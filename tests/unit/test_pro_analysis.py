"""Unit tests for the PRO-model quality analysis."""

import numpy as np
import pytest

from repro.core.blocks import BlockDistribution
from repro.core.permutation import permute_distributed
from repro.pro.analysis import SequentialReference, assess_run, granularity
from repro.pro.cost import CostRecorder, CostReport
from repro.pro.machine import PROMachine
from repro.util.errors import ValidationError


class TestSequentialReference:
    def test_fisher_yates_reference(self):
        ref = SequentialReference.fisher_yates(1000)
        assert ref.operations == 1000
        assert ref.memory_words == 1000
        assert ref.random_variates == 999

    def test_rejects_zero_items(self):
        with pytest.raises(ValidationError):
            SequentialReference.fisher_yates(0)


class TestAssessRun:
    def _report(self, per_rank_ops, per_rank_words, per_rank_mem):
        recorders = []
        for rank, (ops, words, mem) in enumerate(zip(per_rank_ops, per_rank_words, per_rank_mem)):
            rec = CostRecorder(rank)
            rec.add_compute(ops)
            rec.record_send(words)
            rec.allocate(mem)
            recorders.append(rec)
        return CostReport(recorders)

    def test_balanced_optimal_run_is_admissible(self):
        report = self._report([250] * 4, [250] * 4, [260] * 4)
        assessment = assess_run(report, SequentialReference.fisher_yates(1000))
        assert assessment.work_optimal
        assert assessment.space_optimal
        assert assessment.balanced
        assert assessment.admissible

    def test_log_factor_work_is_flagged(self):
        # 40x the sequential work is clearly not work-optimal.
        report = self._report([10_000] * 4, [100] * 4, [300] * 4)
        assessment = assess_run(report, SequentialReference.fisher_yates(1000))
        assert not assessment.work_optimal
        assert not assessment.admissible

    def test_memory_blowup_is_flagged(self):
        report = self._report([250] * 4, [100] * 4, [5000, 100, 100, 100])
        assessment = assess_run(report, SequentialReference.fisher_yates(1000))
        assert not assessment.space_optimal

    def test_imbalance_is_flagged(self):
        report = self._report([900, 10, 10, 10], [100] * 4, [200] * 4)
        assessment = assess_run(report, SequentialReference.fisher_yates(1000))
        assert not assessment.balanced

    def test_zero_reference_rejected(self):
        report = self._report([1], [1], [1])
        with pytest.raises(ValidationError):
            assess_run(report, SequentialReference(operations=0, memory_words=1))

    def test_summary_table_mentions_verdict(self):
        report = self._report([250] * 4, [250] * 4, [260] * 4)
        assessment = assess_run(report, SequentialReference.fisher_yates(1000))
        table = assessment.summary_table()
        assert "PRO-admissible" in table

    def test_real_algorithm1_run_is_admissible(self):
        n, p = 8_000, 4
        data = np.arange(n)
        blocks = [b.copy() for b in BlockDistribution.balanced(n, p).split(data)]
        machine = PROMachine(p, seed=0, count_random_variates=True)
        _, run = permute_distributed(blocks, machine=machine)
        assessment = assess_run(run.cost_report, SequentialReference.fisher_yates(n))
        assert assessment.admissible, assessment.summary_table()

    def test_sort_based_baseline_fails_work_optimality(self):
        from repro.baselines.sort_based import sort_based_permutation
        n = 8_000
        _, run = sort_based_permutation(np.arange(n), n_procs=4, seed=1)
        assessment = assess_run(run.cost_report, SequentialReference.fisher_yates(n))
        assert not assessment.work_optimal


class TestGranularity:
    def test_alg6_is_sqrt_n(self):
        assert granularity(10_000, matrix_algorithm="alg6") == pytest.approx(100.0)

    def test_alg5_pays_a_log_factor(self):
        g6 = granularity(1_000_000, matrix_algorithm="alg6")
        g5 = granularity(1_000_000, matrix_algorithm="alg5")
        assert g5 < g6

    def test_root_is_cube_root(self):
        assert granularity(1_000_000, matrix_algorithm="root") == pytest.approx(100.0)

    def test_unknown_algorithm(self):
        with pytest.raises(ValidationError):
            granularity(100, matrix_algorithm="alg7")

    def test_tiny_n(self):
        assert granularity(1, matrix_algorithm="alg5") >= 1.0
