"""Lifecycle tests for the persistent worker pool of the process backend.

The pool's contract (see :mod:`repro.pro.backends.pool`): spawn once and
reuse across runs with bit-identical results for a fixed seed, poison the
fleet on any failure, idempotent close, and no shared-memory leaks over a
full lifecycle.
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.permutation import random_permutation
from repro.pro.backends.pool import WorkerPool, pool
from repro.pro.machine import PROMachine
from repro.rng.counting import CountingRNG
from repro.util.errors import BackendError, ValidationError
from repro.util.timeouts import scale_timeout

pytestmark = pytest.mark.subprocess  # every test spawns a worker fleet


# Module-level programs: the dispatch queue pickles them, and unlike
# closures they stay picklable without cloudpickle.
def _rank_pid_program(ctx):
    return ctx.rank, os.getpid()


def _allreduce_program(ctx):
    return ctx.comm.allreduce(ctx.rank)


def _draw_program(ctx):
    return float(ctx.rng.random())


def _crash_program(ctx):
    if ctx.rank == 1:
        os._exit(23)  # hard kill: no exception, no report
    ctx.comm.barrier()
    return ctx.rank


def _raise_program(ctx):
    if ctx.rank == 0:
        raise RuntimeError("boom on rank 0")
    ctx.comm.barrier()
    return ctx.rank


def _count_program(ctx):
    assert isinstance(ctx.rng, CountingRNG)
    ctx.rng.random(5)
    return None


def _send_unconsumed_program(ctx, value):
    # A legal (sends never block) program that completes successfully
    # while leaving a message in rank 1's inbox.
    if ctx.rank == 0:
        ctx.comm.send(value, 1, tag="stale")
    return ctx.rank


def _send_and_recv_program(ctx, value):
    if ctx.rank == 0:
        ctx.comm.send(value, 1, tag="stale")
        return None
    return ctx.comm.recv(0, tag="stale")


def _persistent_machine(n, **kwargs):
    kwargs.setdefault("timeout", scale_timeout(20))
    return PROMachine(n, backend="process", persistent=True, **kwargs)


class TestPoolReuse:
    def test_workers_survive_across_runs(self):
        machine = _persistent_machine(3, seed=0)
        try:
            first = machine.run(_rank_pid_program).results
            second = machine.run(_rank_pid_program).results
            third = machine.run(_rank_pid_program).results
            assert first == second == third
            pids = {pid for _rank, pid in first}
            assert len(pids) == 3 and os.getpid() not in pids
        finally:
            machine.close()

    def test_three_runs_seed_identical_to_fresh_machine(self):
        # Persistence must not change what the ranks draw: k runs of a
        # persistent machine replay exactly the k runs of a fresh
        # non-persistent machine built from the same seed.
        persistent = _persistent_machine(4, seed=2024)
        fresh = PROMachine(4, seed=2024, backend="process",
                           timeout=scale_timeout(20))
        try:
            for iteration in range(3):
                a = random_permutation(np.arange(3000), machine=persistent)
                b = random_permutation(np.arange(3000), machine=fresh)
                assert np.array_equal(a, b), iteration
        finally:
            persistent.close()

    def test_consecutive_runs_draw_fresh_randomness(self):
        machine = _persistent_machine(2, seed=5)
        try:
            first = machine.run(_draw_program).results
            second = machine.run(_draw_program).results
            assert first != second
        finally:
            machine.close()

    def test_stale_messages_never_cross_epochs(self):
        # Run 1 succeeds while leaving an unconsumed message (111) in
        # rank 1's inbox; run 2 sends 222 under the same tag and receives.
        # The standing fabric must deliver run 2's message, exactly like a
        # fresh one-shot fabric would -- message tags are epoch-scoped.
        machine = _persistent_machine(2, seed=0)
        try:
            machine.run(_send_unconsumed_program, 111)
            results = machine.run(_send_and_recv_program, 222).results
            assert results[1] == 222
        finally:
            machine.close()

    def test_collectives_and_accounting_through_pool(self):
        machine = _persistent_machine(3, seed=1, count_random_variates=True)
        try:
            assert machine.run(_allreduce_program).results == [3, 3, 3]
            report = machine.run(_count_program).cost_report
            assert report.total("random_variates") == 15
        finally:
            machine.close()

    def test_pool_context_manager(self):
        with pool(2, seed=9) as machine:
            assert machine.persistent
            assert machine.run(_allreduce_program).results == [1, 1]
        # exiting the context closed the fleet; the next run respawns it
        with pool(2, seed=9, transport="pickle") as machine:
            assert machine.backend.transport.name == "pickle"
            assert machine.run(_allreduce_program).results == [1, 1]


class TestPoolFailure:
    @pytest.mark.slow
    def test_worker_crash_poisons_pool(self):
        machine = _persistent_machine(2, seed=0)
        try:
            with pytest.raises(BackendError):
                machine.run(_crash_program)
            with pytest.raises(BackendError, match="poisoned"):
                machine.run(_rank_pid_program)
        finally:
            machine.close()

    def test_program_exception_poisons_pool(self):
        machine = _persistent_machine(3, seed=0)
        try:
            with pytest.raises(BackendError, match="rank 0"):
                machine.run(_raise_program)
            with pytest.raises(BackendError, match="poisoned"):
                machine.run(_rank_pid_program)
        finally:
            machine.close()

    def test_unpicklable_program_raises_without_poisoning(self):
        try:
            import cloudpickle  # noqa: F401
            pytest.skip("cloudpickle widens pickling to closures")
        except ImportError:
            pass
        machine = _persistent_machine(2, seed=0)
        try:
            captured = []
            with pytest.raises(BackendError, match="picklable"):
                machine.run(lambda ctx: captured)  # closure: not picklable
            # a dispatch-time failure must not poison the standing fleet
            assert machine.run(_allreduce_program).results == [1, 1]
        finally:
            machine.close()

    def test_unpicklable_argument_raises_cleanly(self):
        import threading

        machine = _persistent_machine(2, seed=0)
        try:
            with pytest.raises(BackendError, match="picklable"):
                machine.run(_rank_pid_program, threading.Lock())
            assert machine.run(_allreduce_program).results == [1, 1]
        finally:
            machine.close()


class TestPoolShutdown:
    def test_close_is_idempotent(self):
        machine = _persistent_machine(2, seed=0)
        machine.run(_allreduce_program)
        backend_pool = machine.backend._pools[2]
        machine.close()
        machine.close()
        backend_pool.close()  # pool-level close after machine close: no-op
        assert backend_pool.closed

    def test_run_after_close_respawns_fleet(self):
        machine = _persistent_machine(2, seed=0)
        first_pids = {pid for _r, pid in machine.run(_rank_pid_program).results}
        machine.close()
        second_pids = {pid for _r, pid in machine.run(_rank_pid_program).results}
        machine.close()
        assert first_pids.isdisjoint(second_pids)

    def test_direct_pool_run_validates_contexts(self):
        worker_pool = WorkerPool(2, timeout=scale_timeout(10))
        try:
            with pytest.raises(BackendError, match="contexts"):
                worker_pool.run([None], _allreduce_program, (), {})
        finally:
            worker_pool.close()

    def test_pool_validates_n_procs(self):
        with pytest.raises(ValidationError):
            WorkerPool(0)

    def test_no_sharedmem_leak_warnings_over_full_lifecycle(self):
        """A run->reuse->close lifecycle must not trip -W error or the
        multiprocessing resource tracker (leaked segment warnings appear
        on stderr at interpreter exit, so check a subprocess)."""
        script = textwrap.dedent("""
            import numpy as np
            from repro.pro.machine import PROMachine
            from repro.core.permutation import random_permutation

            machine = PROMachine(3, seed=1, backend="process", persistent=True)
            for _ in range(3):
                out = random_permutation(np.arange(20_000), machine=machine)
                assert out.shape == (20_000,)
            machine.close()
        """)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-W", "error", "-c", script],
            capture_output=True, text=True, env=env,
            timeout=scale_timeout(120),
        )
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr
