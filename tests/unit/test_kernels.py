"""Kernel registry, word stream and tier plumbing (see repro.core.kernels).

The bit-exactness of the kernels themselves is pinned in
``tests/unit/test_kernel_equivalence.py`` and the property suite; this module
covers the machinery around them: request normalization, the REPRO_KERNELS
environment variable, silent degrade to the NumPy tier, the raw-word stream
protocol (checkpoint / retry / rewind), the ``kernels=`` argument threading
through engine and machine, and the cost-record repatriation fields.
"""

import numpy as np
import pytest

from repro.core import hypergeometric as hg
from repro.core import kernels
from repro.core.engine import SamplerEngine, get_engine
from repro.core.kernels import (
    VALID_KERNELS,
    normalize_kernels,
    reset_kernels,
    resolve_kernels,
    wordstream,
)
from repro.core.kernels.numpy_tier import NumpyKernels
from repro.pro.cost import CostRecorder, CostReport
from repro.pro.machine import PROMachine, resolve_machine
from repro.rng.counting import CountingRNG
from repro.util.errors import ValidationError


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Each test resolves tiers from a clean cache (and leaves one behind)."""
    reset_kernels()
    yield
    reset_kernels()


class TestNormalize:
    @pytest.mark.parametrize("name", VALID_KERNELS)
    def test_valid_names_pass_through(self, name):
        assert normalize_kernels(name) == name

    def test_none_defaults_to_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert normalize_kernels(None) == "auto"

    def test_none_defers_to_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert normalize_kernels(None) == "numpy"

    def test_empty_environment_means_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "")
        assert normalize_kernels(None) == "auto"

    def test_invalid_environment_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "cuda")
        with pytest.raises(ValidationError, match="cuda"):
            normalize_kernels(None)

    @pytest.mark.parametrize("bad", ["jit", "", 7, ["numpy"]])
    def test_invalid_request_raises(self, bad):
        with pytest.raises(ValidationError):
            normalize_kernels(bad)

    def test_tier_object_passes_through(self):
        tier = NumpyKernels()
        assert normalize_kernels(tier) is tier


class TestResolve:
    def test_numpy_resolves_to_numpy_tier(self):
        tier = resolve_kernels("numpy")
        assert tier.name == "numpy"
        assert tier.warmup_seconds == 0.0

    def test_resolution_is_cached(self):
        assert resolve_kernels("numpy") is resolve_kernels("numpy")

    def test_reset_drops_cache(self):
        first = resolve_kernels("numpy")
        reset_kernels()
        assert resolve_kernels("numpy") is not first

    def test_tier_object_short_circuits(self):
        tier = NumpyKernels()
        assert resolve_kernels(tier) is tier

    @pytest.mark.parametrize("request_name", ["auto", "numba"])
    def test_degrades_to_numpy_when_numba_build_fails(self, request_name, monkeypatch):
        from repro.core.kernels import numba_tier

        def boom():
            raise RuntimeError("no compiler on this host")

        monkeypatch.setattr(numba_tier, "build", boom)
        tier = resolve_kernels(request_name)
        assert tier.name == "numpy"

    def test_degrades_when_self_check_fails(self, monkeypatch):
        from repro.core.kernels import numba_tier, portable

        monkeypatch.setattr(portable, "HAVE_NUMBA", True)
        monkeypatch.setattr(
            numba_tier.NumbaKernels,
            "_verify",
            lambda self: (_ for _ in ()).throw(AssertionError("divergence")),
        )
        assert resolve_kernels("numba").name == "numpy"

    def test_environment_selects_tier_for_default_request(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert resolve_kernels(None).name == "numpy"


class TestNumpyTier:
    """The NumPy tier declines everything: kernels="numpy" is the old code."""

    def test_declines_all_capabilities(self):
        tier = NumpyKernels()
        rng = np.random.default_rng(0)
        assert tier.multivariate_batch(rng, [3], [[1, 2]]) is None
        assert tier.sample_matrix(rng, [3], [3]) is None
        assert tier.repeat_hypergeometric(rng, 5, 5, 3, 4) is None
        assert tier.permutation(rng, 8) is None

    def test_warm_up_is_free(self):
        tier = NumpyKernels()
        assert tier.warm_up() is tier
        assert tier.warmup_seconds == 0.0


class TestSupportedGenerator:
    def test_pcg64_is_supported(self):
        gen = np.random.default_rng(0)
        assert wordstream.supported_generator(gen) is gen

    def test_counting_rng_is_unwrapped(self):
        counting = CountingRNG(np.random.default_rng(0))
        assert wordstream.supported_generator(counting) is counting.generator

    def test_mt19937_is_rejected(self):
        gen = np.random.Generator(np.random.MT19937(0))
        assert wordstream.supported_generator(gen) is None

    @pytest.mark.parametrize("bitgen", ["PCG64DXSM", "Philox", "SFC64"])
    def test_other_64bit_generators_supported(self, bitgen):
        gen = np.random.Generator(getattr(np.random, bitgen)(0))
        assert wordstream.supported_generator(gen) is gen

    def test_duck_typed_rng_is_rejected(self):
        class FakeRng:
            def random(self):
                return 0.5

        assert wordstream.supported_generator(FakeRng()) is None


class TestRunKernel:
    def test_advances_stream_by_exactly_the_consumed_words(self):
        gen = np.random.default_rng(123)
        reference = np.random.default_rng(123)

        def invoke(words, cur):
            cur[0] = 3  # pretend the kernel consumed three words
            return 0

        consumed = wordstream.run_kernel(gen, 8, invoke)
        assert consumed == 3
        reference.bit_generator.random_raw(3)
        assert np.array_equal(gen.random(4), reference.random(4))

    def test_exhaustion_retries_with_doubled_buffer(self):
        gen = np.random.default_rng(7)
        reference = np.random.default_rng(7)
        sizes = []

        def invoke(words, cur):
            sizes.append(words.size)
            if words.size < 32:
                return -1  # no partial result, per the kernel contract
            cur[0] = 5
            return 0

        consumed = wordstream.run_kernel(gen, 8, invoke)
        assert consumed == 5
        assert sizes == [8, 16, 32]  # geometric growth from the estimate
        reference.bit_generator.random_raw(5)
        assert np.array_equal(gen.random(2), reference.random(2))

    def test_estimate_floor(self):
        gen = np.random.default_rng(1)
        seen = []

        def invoke(words, cur):
            seen.append(words.size)
            return 0

        wordstream.run_kernel(gen, 0, invoke)
        assert seen == [8]

    def test_half_word_buffer_is_patched_back(self):
        """A kernel ending mid-word leaves the generator's uint32 buffer set."""
        gen = np.random.default_rng(42)
        reference = np.random.default_rng(42)

        def invoke(words, cur):
            # Consume one 32-bit half of the first word, like an odd number
            # of bounded-integer draws would.
            from repro.core.kernels import portable

            portable._next_u32(words, cur)
            return 0

        wordstream.run_kernel(gen, 8, invoke)
        # A 2-element shuffle makes exactly one buffered 32-bit request.
        reference.shuffle(np.arange(2))
        assert gen.bit_generator.state["has_uint32"] == 1
        assert np.array_equal(gen.random(4), reference.random(4))


class TestEngineKernelsArgument:
    def test_get_engine_caches_per_kernels_request(self):
        assert get_engine("auto", kernels="numpy") is get_engine("auto", kernels="numpy")
        assert get_engine("auto", kernels="numpy") is not get_engine("auto")

    def test_prebuilt_engine_rejects_kernels(self):
        engine = SamplerEngine("auto")
        with pytest.raises(ValidationError, match="pre-built"):
            get_engine(engine, kernels="numpy")

    def test_tier_object_builds_private_engine(self):
        tier = NumpyKernels()
        engine = get_engine("auto", kernels=tier)
        assert engine._resolve_tier() is tier
        assert engine is not get_engine("auto", kernels=tier)

    def test_invalid_kernels_name_raises_eagerly(self):
        with pytest.raises(ValidationError, match="cuda"):
            SamplerEngine("auto", kernels="cuda")

    def test_tier_resolution_is_lazy(self, monkeypatch):
        engine = SamplerEngine("auto", kernels="numpy")
        sentinel = NumpyKernels()
        monkeypatch.setitem(kernels._TIERS, "numpy", sentinel)
        assert engine._resolve_tier() is sentinel


class TestMachineKernelsArgument:
    def test_machine_records_the_request(self):
        machine = PROMachine(2, seed=0, kernels="numpy")
        try:
            assert machine.kernels == "numpy"
        finally:
            machine.close()

    def test_machine_rejects_invalid_request(self):
        with pytest.raises(ValidationError):
            PROMachine(2, seed=0, kernels="cuda")

    def test_resolve_machine_threads_kernels(self):
        machine = resolve_machine(2, seed=0, kernels="numpy")
        try:
            assert machine.kernels == "numpy"
        finally:
            machine.close()

    def test_prebuilt_machine_and_kernels_mutually_exclusive(self):
        machine = PROMachine(2, seed=0)
        try:
            with pytest.raises(ValidationError, match="kernels"):
                resolve_machine(2, machine=machine, kernels="numpy")
        finally:
            machine.close()


class TestCostRepatriation:
    def test_recorder_defaults(self):
        rec = CostRecorder()
        assert rec.kernel_tier is None
        assert rec.kernel_warmup_seconds == 0.0
        totals = rec.as_dict()
        assert totals["kernel_tier"] is None
        assert totals["kernel_warmup_seconds"] == 0.0

    def test_note_kernel_tier(self):
        rec = CostRecorder()
        rec.note_kernel_tier("numba", warmup_seconds=0.25)
        assert rec.as_dict()["kernel_tier"] == "numba"
        assert rec.as_dict()["kernel_warmup_seconds"] == 0.25

    def test_report_lists_tiers_by_rank(self):
        recs = [CostRecorder(), CostRecorder()]
        recs[1].note_kernel_tier("numpy")
        report = CostReport(recs)
        assert report.kernel_tiers() == [(None, 0.0), ("numpy", 0.0)]

    def test_driver_repatriates_tier_per_rank(self):
        from repro.core.permutation import permute_distributed

        blocks = [np.arange(4), np.arange(4, 8)]
        _, run = permute_distributed(blocks, seed=5, kernels="numpy")
        tiers = run.cost_report.kernel_tiers()
        assert len(tiers) == 2
        assert all(tier == "numpy" for tier, _ in tiers)

    def test_matrix_driver_repatriates_tier(self):
        from repro.core.parallel_matrix import sample_matrix_parallel

        _, run = sample_matrix_parallel([4, 4, 4], seed=5, kernels="numpy")
        assert all(tier == "numpy" for tier, _ in run.cost_report.kernel_tiers())

    def test_tier_survives_the_process_backend(self):
        from repro.core.parallel_matrix import sample_matrix_parallel

        _, run = sample_matrix_parallel(
            [4, 4], seed=5, backend="process", persistent=False, kernels="numpy"
        )
        assert all(tier == "numpy" for tier, _ in run.cost_report.kernel_tiers())


class TestBlockedSampleMany:
    """sample_many's pre-drawn uniform block vs the scalar loop it replaced."""

    @pytest.mark.parametrize(
        "t,w,b,method",
        [
            (5, 20, 30, "hin"),
            (40, 60, 50, "hrua"),
            (7, 9, 8, "auto"),
            (450, 300, 400, "auto"),
        ],
    )
    def test_blocked_path_matches_scalar_loop(self, t, w, b, method, monkeypatch):
        blocked = hg.sample_many(t, w, b, size=40, rng=np.random.default_rng(11), method=method)
        monkeypatch.setattr(wordstream, "supported_generator", lambda rng: None)
        loop = hg.sample_many(t, w, b, size=40, rng=np.random.default_rng(11), method=method)
        assert np.array_equal(blocked, loop)

    def test_stream_position_matches_scalar_loop(self, monkeypatch):
        g1, g2 = np.random.default_rng(3), np.random.default_rng(3)
        hg.sample_many(12, 30, 25, size=25, rng=g1)
        monkeypatch.setattr(wordstream, "supported_generator", lambda rng: None)
        hg.sample_many(12, 30, 25, size=25, rng=g2)
        assert np.array_equal(g1.random(8), g2.random(8))

    def test_counting_and_recorder_parity(self, monkeypatch):
        c1 = CountingRNG(np.random.default_rng(9))
        c2 = CountingRNG(np.random.default_rng(9))
        r1 = hg.SampleRecorder(keep_per_call=True)
        r2 = hg.SampleRecorder(keep_per_call=True)
        with r1:
            a = hg.sample_many(40, 60, 50, size=30, rng=c1)
        monkeypatch.setattr(wordstream, "supported_generator", lambda rng: None)
        with r2:
            b = hg.sample_many(40, 60, 50, size=30, rng=c2)
        assert np.array_equal(a, b)
        assert (c1.uniforms_drawn, c1.calls) == (c2.uniforms_drawn, c2.calls)
        assert r1.per_call == r2.per_call
        assert r1.max_uniforms == r2.max_uniforms

    def test_plain_generator_records_zero_uniforms(self):
        with hg.SampleRecorder(keep_per_call=True) as rec:
            hg.sample_many(5, 20, 30, size=4, rng=np.random.default_rng(0))
        assert rec.per_call == [0, 0, 0, 0]
        assert rec.n_calls == 4

    def test_trivial_parameters_skip_the_kernels(self):
        out = hg.sample_many(0, 5, 5, size=3, rng=np.random.default_rng(0))
        assert out.tolist() == [0, 0, 0]

    def test_numpy_method_keeps_the_scalar_loop(self):
        g1, g2 = np.random.default_rng(2), np.random.default_rng(2)
        blocked = hg.sample_many(6, 10, 12, size=8, rng=g1, method="numpy")
        loop = np.array([hg.sample(6, 10, 12, g2, method="numpy") for _ in range(8)])
        assert np.array_equal(blocked, loop)


class TestLogBinomialMemoization:
    def test_repeated_parameters_hit_the_cache(self):
        hg._log_binomial.cache_clear()
        hg.pmf(3, 6, 10, 12)
        info_first = hg._log_binomial.cache_info()
        hg.pmf(3, 6, 10, 12)
        info_second = hg._log_binomial.cache_info()
        assert info_second.hits > info_first.hits
        assert info_second.misses == info_first.misses
