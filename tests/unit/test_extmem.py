"""Unit tests for the external-memory subpackage (block stores + permutations)."""

import numpy as np
import pytest

from repro.extmem.blockstore import (
    CachedBlockStore,
    FileBlockStore,
    IOStatistics,
    MemoryBlockStore,
)
from repro.extmem.permutation import (
    external_random_permutation,
    naive_external_permutation,
)
from repro.util.errors import ValidationError


class TestIOStatistics:
    def test_total_and_reset(self):
        stats = IOStatistics(blocks_read=3, blocks_written=2, words_read=30, words_written=20)
        assert stats.total_block_transfers == 5
        stats.reset()
        assert stats.total_block_transfers == 0
        assert stats.words_read == 0


class TestMemoryBlockStore:
    def test_write_read_roundtrip(self):
        store = MemoryBlockStore()
        store.write_block(0, np.arange(5))
        assert np.array_equal(store.read_block(0), np.arange(5))

    def test_accounting(self):
        store = MemoryBlockStore()
        store.write_block(0, np.arange(5))
        store.read_block(0)
        store.read_block(0)
        assert store.io.blocks_written == 1
        assert store.io.blocks_read == 2
        assert store.io.words_read == 10

    def test_missing_block(self):
        with pytest.raises(ValidationError):
            MemoryBlockStore().read_block(3)

    def test_block_ids_sorted(self):
        store = MemoryBlockStore()
        store.write_block(5, np.arange(2))
        store.write_block(1, np.arange(2))
        assert store.block_ids() == [1, 5]

    def test_write_copies_data(self):
        store = MemoryBlockStore()
        data = np.arange(3)
        store.write_block(0, data)
        data[0] = 99
        assert store.read_block(0)[0] == 0

    def test_load_and_dump_vector(self):
        store = MemoryBlockStore()
        store.load_vector(np.arange(10), block_size=4)
        assert store.block_ids() == [0, 1, 2]
        assert np.array_equal(store.dump_vector(), np.arange(10))

    def test_total_items(self):
        store = MemoryBlockStore()
        store.load_vector(np.arange(10), block_size=3)
        assert store.total_items() == 10

    def test_has_block(self):
        store = MemoryBlockStore()
        store.write_block(2, np.arange(1))
        assert store.has_block(2)
        assert not store.has_block(0)


class TestFileBlockStore:
    def test_roundtrip_on_disk(self, tmp_path):
        store = FileBlockStore(str(tmp_path / "blocks"))
        store.write_block(0, np.arange(7))
        store.write_block(3, np.array([1.5, 2.5]))
        assert store.block_ids() == [0, 3]
        assert np.array_equal(store.read_block(0), np.arange(7))
        assert np.allclose(store.read_block(3), [1.5, 2.5])

    def test_persistence_across_instances(self, tmp_path):
        directory = str(tmp_path / "blocks")
        FileBlockStore(directory).write_block(1, np.arange(4))
        reopened = FileBlockStore(directory)
        assert reopened.block_ids() == [1]
        assert np.array_equal(reopened.read_block(1), np.arange(4))

    def test_missing_block(self, tmp_path):
        store = FileBlockStore(str(tmp_path / "blocks"))
        with pytest.raises(ValidationError):
            store.read_block(0)


class TestCachedBlockStore:
    def test_hits_and_misses(self):
        backing = MemoryBlockStore()
        backing.load_vector(np.arange(40), block_size=10)
        backing.io.reset()
        cached = CachedBlockStore(backing, capacity_blocks=2)
        cached.read_block(0)
        cached.read_block(0)
        cached.read_block(1)
        assert cached.misses == 2
        assert cached.hits == 1
        assert backing.io.blocks_read == 2

    def test_eviction_respects_capacity(self):
        backing = MemoryBlockStore()
        backing.load_vector(np.arange(60), block_size=10)
        backing.io.reset()
        cached = CachedBlockStore(backing, capacity_blocks=2)
        for block_id in (0, 1, 2, 0):
            cached.read_block(block_id)
        # block 0 was evicted by block 2, so the second read of 0 misses.
        assert cached.misses == 4

    def test_dirty_blocks_written_back_on_eviction(self):
        backing = MemoryBlockStore()
        backing.load_vector(np.zeros(30, dtype=np.int64), block_size=10)
        backing.io.reset()
        cached = CachedBlockStore(backing, capacity_blocks=1)
        cached.write_block(0, np.full(10, 7))
        cached.read_block(1)  # evicts dirty block 0
        assert np.array_equal(backing._read(0), np.full(10, 7))

    def test_flush_writes_dirty_blocks(self):
        backing = MemoryBlockStore()
        backing.load_vector(np.zeros(20, dtype=np.int64), block_size=10)
        cached = CachedBlockStore(backing, capacity_blocks=4)
        cached.write_block(1, np.full(10, 3))
        cached.flush()
        assert np.array_equal(backing._read(1), np.full(10, 3))

    def test_miss_rate(self):
        backing = MemoryBlockStore()
        backing.load_vector(np.arange(20), block_size=10)
        cached = CachedBlockStore(backing, capacity_blocks=2)
        assert cached.miss_rate == 0.0
        cached.read_block(0)
        cached.read_block(0)
        assert cached.miss_rate == 0.5


class TestExternalPermutation:
    def _make_store(self, n, block_size):
        store = MemoryBlockStore()
        store.load_vector(np.arange(n), block_size=block_size)
        store.io.reset()
        return store

    def test_two_pass_preserves_items(self):
        source = self._make_store(200, 25)
        target = MemoryBlockStore()
        result = external_random_permutation(source, target, seed=1)
        out = target.dump_vector()
        assert sorted(out.tolist()) == list(range(200))
        assert result.n_items == 200
        assert result.algorithm == "two-pass"

    def test_two_pass_block_layout_preserved(self):
        source = self._make_store(100, 10)
        target = MemoryBlockStore()
        external_random_permutation(source, target, seed=2)
        assert [target._read(i).size for i in target.block_ids()] == [10] * 10

    def test_two_pass_io_is_linear_in_blocks(self):
        source = self._make_store(400, 50)   # 8 blocks of 50 items
        target = MemoryBlockStore()
        result = external_random_permutation(source, target, seed=3)
        # Each source block is read once and each target block written once;
        # the staging traffic is bounded by one read + one write per
        # non-empty (source, target) pair, i.e. at most 2 * B per data block.
        n_blocks = 8
        assert result.transfers_per_block_of_data <= 2 * n_blocks + 4
        assert result.block_transfers < 400  # far fewer transfers than items

    def test_two_pass_actually_permutes(self):
        source = self._make_store(500, 50)
        target = MemoryBlockStore()
        external_random_permutation(source, target, seed=4)
        assert not np.array_equal(target.dump_vector(), np.arange(500))

    def test_empty_store(self):
        result = external_random_permutation(MemoryBlockStore(), MemoryBlockStore(), seed=0)
        assert result.n_items == 0
        assert result.block_transfers == 0

    def test_uneven_blocks(self):
        source = MemoryBlockStore()
        source.write_block(0, np.arange(0, 13))
        source.write_block(1, np.arange(13, 20))
        source.write_block(2, np.arange(20, 21))
        target = MemoryBlockStore()
        external_random_permutation(source, target, seed=5)
        assert sorted(target.dump_vector().tolist()) == list(range(21))
        assert [target._read(i).size for i in target.block_ids()] == [13, 7, 1]

    def test_file_backed_end_to_end(self, tmp_path):
        source = FileBlockStore(str(tmp_path / "in"))
        source.load_vector(np.arange(64), block_size=16)
        target = FileBlockStore(str(tmp_path / "out"))
        staging = FileBlockStore(str(tmp_path / "staging"))
        result = external_random_permutation(source, target, staging=staging, seed=6)
        assert sorted(target.dump_vector().tolist()) == list(range(64))
        assert result.block_transfers > 0

    def test_reproducible_with_seed(self):
        outs = []
        for _ in range(2):
            source = self._make_store(60, 10)
            target = MemoryBlockStore()
            external_random_permutation(source, target, seed=99)
            outs.append(target.dump_vector())
        assert np.array_equal(outs[0], outs[1])


class TestNaiveExternalPermutation:
    def test_preserves_items(self):
        source = MemoryBlockStore()
        source.load_vector(np.arange(80), block_size=10)
        source.io.reset()
        target = MemoryBlockStore()
        result = naive_external_permutation(source, target, cache_blocks=2, seed=1)
        assert sorted(target.dump_vector().tolist()) == list(range(80))
        assert result.algorithm == "naive"

    def test_cache_misses_dominate_when_cache_is_small(self):
        n, block_size = 400, 50
        source = MemoryBlockStore()
        source.load_vector(np.arange(n), block_size=block_size)
        source.io.reset()
        target = MemoryBlockStore()
        naive = naive_external_permutation(source, target, cache_blocks=2, seed=2)

        source2 = MemoryBlockStore()
        source2.load_vector(np.arange(n), block_size=block_size)
        source2.io.reset()
        target2 = MemoryBlockStore()
        two_pass = external_random_permutation(source2, target2, seed=2)

        # The naive algorithm transfers far more blocks than the two-pass one.
        assert naive.block_transfers > 3 * two_pass.block_transfers

    def test_empty_store(self):
        result = naive_external_permutation(MemoryBlockStore(), MemoryBlockStore(), seed=0)
        assert result.n_items == 0

    def test_uniformity_is_not_sacrificed(self):
        """The naive method is still uniform -- only its I/O is bad (occupancy check)."""
        from scipy import stats as scipy_stats
        n = 6
        occupancy = np.zeros((n, n))
        trials = 2000
        rng = np.random.default_rng(3)
        for _ in range(trials):
            source = MemoryBlockStore()
            source.load_vector(np.arange(n), block_size=2)
            target = MemoryBlockStore()
            naive_external_permutation(source, target, cache_blocks=1, rng=rng)
            out = target.dump_vector().astype(int)
            occupancy[out, np.arange(n)] += 1
        expected = trials / n
        statistic = ((occupancy - expected) ** 2 / expected).sum() * (n - 1) / n
        p_value = scipy_stats.chi2.sf(statistic, (n - 1) ** 2)
        assert p_value > 1e-4
