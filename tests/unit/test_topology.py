"""Unit tests for the interconnect topology models."""

import pytest

from repro.pro.topology import (
    FullyConnected,
    Hypercube,
    Mesh2D,
    Ring,
    topology_from_name,
)
from repro.util.errors import ValidationError


class TestFullyConnected:
    def test_hops_self_zero(self):
        assert FullyConnected(4).hops(2, 2) == 0

    def test_hops_distinct_one(self):
        topo = FullyConnected(4)
        assert all(topo.hops(i, j) == 1 for i in range(4) for j in range(4) if i != j)

    def test_diameter(self):
        assert FullyConnected(6).diameter() == 1

    def test_bisection_width(self):
        assert FullyConnected(4).bisection_width() == 4  # 2 * 2 links

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            FullyConnected(3).hops(0, 3)

    def test_single_node(self):
        assert FullyConnected(1).diameter() == 0
        assert FullyConnected(1).average_hops() == 0.0


class TestRing:
    def test_neighbours(self):
        topo = Ring(6)
        assert topo.hops(0, 1) == 1
        assert topo.hops(0, 5) == 1  # wrap-around

    def test_opposite_side(self):
        assert Ring(6).hops(0, 3) == 3

    def test_diameter(self):
        assert Ring(8).diameter() == 4
        assert Ring(7).diameter() == 3

    def test_bisection(self):
        assert Ring(8).bisection_width() == 2


class TestMesh2D:
    def test_grid_shape(self):
        topo = Mesh2D(6)
        assert topo.rows * topo.cols >= 6

    def test_manhattan_distance(self):
        topo = Mesh2D(9)  # 3 x 3
        assert topo.hops(0, 8) == 4
        assert topo.hops(0, 4) == 2

    def test_diameter_monotone(self):
        assert Mesh2D(16).diameter() >= Mesh2D(4).diameter()

    def test_bisection_positive(self):
        assert Mesh2D(16).bisection_width() >= 1


class TestHypercube:
    def test_requires_power_of_two(self):
        with pytest.raises(ValidationError):
            Hypercube(6)

    def test_dimension(self):
        assert Hypercube(8).dimension == 3

    def test_hops_is_hamming_distance(self):
        topo = Hypercube(8)
        assert topo.hops(0b000, 0b111) == 3
        assert topo.hops(0b010, 0b011) == 1

    def test_diameter_equals_dimension(self):
        assert Hypercube(16).diameter() == 4

    def test_bisection(self):
        assert Hypercube(8).bisection_width() == 4


class TestTopologyFromName:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("fully-connected", FullyConnected),
            ("full", FullyConnected),
            ("crossbar", FullyConnected),
            ("ring", Ring),
            ("mesh", Mesh2D),
            ("MESH2D", Mesh2D),
            ("hypercube", Hypercube),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(topology_from_name(name, 4), cls)

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            topology_from_name("torus9d", 4)

    def test_average_hops_bounds(self):
        topo = topology_from_name("ring", 6)
        assert 1.0 <= topo.average_hops() <= topo.diameter()
