"""Unit tests for the random-number substrate (streams, counting, splitmix)."""

import numpy as np
import pytest

from repro.rng.counting import CountingRNG
from repro.rng.splitmix import SplitMix64
from repro.rng.streams import StreamFactory, default_rng, spawn_streams
from repro.util.errors import ValidationError


class TestDefaultRng:
    def test_none_gives_generator(self):
        assert isinstance(default_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = default_rng(7).integers(0, 100, 5)
        b = default_rng(7).integers(0, 100, 5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert default_rng(gen) is gen


class TestStreamFactory:
    def test_reproducible_streams(self):
        a = StreamFactory(42).processor_streams(3)
        b = StreamFactory(42).processor_streams(3)
        for x, y in zip(a, b):
            assert np.array_equal(x.integers(0, 1000, 10), y.integers(0, 1000, 10))

    def test_streams_differ_across_ranks(self):
        streams = StreamFactory(42).processor_streams(4)
        draws = [tuple(s.integers(0, 2**31, 8).tolist()) for s in streams]
        assert len(set(draws)) == 4

    def test_consecutive_spawns_differ(self):
        factory = StreamFactory(42)
        first = factory.processor_streams(2)
        second = factory.processor_streams(2)
        assert not np.array_equal(first[0].integers(0, 2**31, 8), second[0].integers(0, 2**31, 8))

    def test_named_stream_reproducible_and_distinct(self):
        f1, f2 = StreamFactory(1), StreamFactory(1)
        a = f1.named_stream("matrix-root").integers(0, 2**31, 8)
        b = f2.named_stream("matrix-root").integers(0, 2**31, 8)
        c = f2.named_stream("other").integers(0, 2**31, 8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_named_stream_requires_name(self):
        with pytest.raises(ValidationError):
            StreamFactory(1).named_stream("")

    def test_spawn_counts(self):
        factory = StreamFactory(3)
        children = factory.spawn(5)
        assert len(children) == 5

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(9)
        assert StreamFactory(seq).seed_sequence is seq

    def test_spawn_streams_helper(self):
        streams = spawn_streams(5, 3)
        assert len(streams) == 3

    def test_invalid_nprocs(self):
        with pytest.raises(ValidationError):
            StreamFactory(0).processor_streams(0)


class TestCountingRNG:
    def test_counts_scalar_uniforms(self):
        rng = CountingRNG(0)
        rng.random()
        rng.random()
        assert rng.uniforms_drawn == 2

    def test_counts_vector_uniforms(self):
        rng = CountingRNG(0)
        rng.random(10)
        assert rng.uniforms_drawn == 10

    def test_counts_integers(self):
        rng = CountingRNG(0)
        rng.integers(0, 10, size=7)
        assert rng.integers_drawn == 7

    def test_shuffle_charges_n_minus_one(self):
        rng = CountingRNG(0)
        data = np.arange(10)
        rng.shuffle(data)
        assert rng.integers_drawn == 9

    def test_permutation_charges_n_minus_one(self):
        rng = CountingRNG(0)
        rng.permutation(6)
        assert rng.integers_drawn == 5

    def test_total_and_reset(self):
        rng = CountingRNG(0)
        rng.random(3)
        rng.integers(0, 5, size=2)
        assert rng.total_variates == 5
        rng.reset()
        assert rng.total_variates == 0
        assert rng.calls == 0

    def test_values_match_wrapped_generator(self):
        seed = 123
        counting = CountingRNG(np.random.default_rng(seed))
        plain = np.random.default_rng(seed)
        assert np.allclose(counting.random(4), plain.random(4))

    def test_rejects_non_generator(self):
        with pytest.raises(ValidationError):
            CountingRNG("not a generator")

    def test_hypergeometric_forwarded(self):
        rng = CountingRNG(0)
        value = rng.hypergeometric(5, 5, 4)
        assert 0 <= value <= 4
        assert rng.uniforms_drawn == 1


class TestSplitMix64:
    def test_known_first_output(self):
        # Reference value for seed 0 (SplitMix64 test vector).
        assert SplitMix64(0).next_uint64() == 0xE220A8397B1DCDAF

    def test_reproducible(self):
        a, b = SplitMix64(99), SplitMix64(99)
        assert [a.next_uint64() for _ in range(5)] == [b.next_uint64() for _ in range(5)]

    def test_random_in_unit_interval(self):
        rng = SplitMix64(5)
        values = [rng.random() for _ in range(100)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_integers_in_range(self):
        rng = SplitMix64(5)
        values = [rng.integers(3, 9) for _ in range(200)]
        assert min(values) >= 3 and max(values) < 9
        assert set(values) == set(range(3, 9))  # all values hit with 200 draws

    def test_integers_invalid_range(self):
        with pytest.raises(ValueError):
            SplitMix64(1).integers(5, 5)

    def test_shuffle_is_permutation(self):
        rng = SplitMix64(7)
        data = list(range(20))
        rng.shuffle(data)
        assert sorted(data) == list(range(20))

    def test_spawn_differs_from_parent(self):
        parent = SplitMix64(1)
        child = parent.spawn()
        assert parent.next_uint64() != child.next_uint64()

    def test_negative_seed_rejected(self):
        with pytest.raises(ValidationError):
            SplitMix64(-1)

    def test_draw_counter(self):
        rng = SplitMix64(2)
        rng.random()
        rng.random()
        assert rng.draws == 2
