"""Unit tests for the benchmark harness and the experiment drivers."""

import numpy as np
import pytest

from repro.bench.figure1 import figure1_layout, render_layout
from repro.bench.harness import BenchRecord, measure_seconds, paper_vs_measured_table
from repro.bench.paper_claims import PAPER_CLAIMS, PAPER_TABLE1_N_ITEMS, PAPER_TABLE1_SECONDS
from repro.bench.randoms import uniforms_per_h_call
from repro.bench.scaling import (
    ORIGIN_SCALING_MODEL,
    OriginScalingModel,
    crossover_processors,
    format_scaling_rows,
    measured_scaling_table,
    overhead_factor,
    predicted_scaling_table,
)
from repro.util.errors import ValidationError


class TestHarness:
    def test_measure_seconds_returns_result(self):
        out = measure_seconds(lambda x: x * 2, 21, repeats=2)
        assert out["result"] == 42
        assert out["best_seconds"] <= out["mean_seconds"] or out["repeats"] == 1
        assert out["repeats"] == 2

    def test_measure_seconds_validates_repeats(self):
        with pytest.raises(ValidationError):
            measure_seconds(lambda: None, repeats=0)

    def test_paper_vs_measured_table(self):
        records = [BenchRecord("overhead", "3-5", 4.6, unit="x"),
                   BenchRecord("crossover", 6, 6, unit="procs")]
        text = paper_vs_measured_table(records, title="T1")
        assert "overhead" in text and "crossover" in text and "T1" in text
        md = paper_vs_measured_table(records, markdown=True)
        assert md.startswith("| quantity |")


class TestPaperClaims:
    def test_table1_entries(self):
        assert PAPER_TABLE1_SECONDS[0] == 137.0
        assert PAPER_TABLE1_SECONDS[48] == 53.2
        assert PAPER_TABLE1_N_ITEMS == 480_000_000

    def test_all_experiment_ids_present(self):
        for key in ("T1", "E2", "E3", "E4", "E5", "E6", "E7", "F1"):
            assert key in PAPER_CLAIMS
            assert "statement" in PAPER_CLAIMS[key]


class TestScalingModel:
    def test_sequential_time_matches_calibration(self):
        t = ORIGIN_SCALING_MODEL.sequential_time(PAPER_TABLE1_N_ITEMS)
        assert t == pytest.approx(PAPER_TABLE1_SECONDS[0], rel=1e-6)

    def test_three_processor_time_matches_calibration(self):
        t = ORIGIN_SCALING_MODEL.parallel_time(PAPER_TABLE1_N_ITEMS, 3)
        assert t == pytest.approx(PAPER_TABLE1_SECONDS[3], rel=0.02)

    def test_predictions_within_15_percent_of_paper(self):
        """The calibrated model reproduces every row of the paper's table within 15%."""
        for p, seconds in PAPER_TABLE1_SECONDS.items():
            if p in (0, 3):
                continue  # calibration points
            predicted = ORIGIN_SCALING_MODEL.parallel_time(PAPER_TABLE1_N_ITEMS, p)
            assert abs(predicted - seconds) / seconds < 0.15, (p, predicted, seconds)

    def test_overhead_factor_in_paper_range(self):
        rows = predicted_scaling_table()
        factor = overhead_factor(rows)
        low, high = PAPER_CLAIMS["T1"]["overhead_factor_range"]
        assert low <= factor <= high

    def test_crossover_matches_paper(self):
        rows = predicted_scaling_table()
        assert crossover_processors(rows) == PAPER_CLAIMS["T1"]["crossover_processors"]

    def test_speedup_monotone_in_p(self):
        model = ORIGIN_SCALING_MODEL
        speedups = [model.speedup(PAPER_TABLE1_N_ITEMS, p) for p in (3, 6, 12, 24, 48)]
        assert all(b > a for a, b in zip(speedups, speedups[1:]))

    def test_matrix_term_visible_at_huge_p(self):
        model = OriginScalingModel(
            seconds_per_item_sequential=1e-7, seconds_per_item_shuffle=1e-7,
            seconds_per_item_exchange=1e-7, memory_saturation=1e9,
            seconds_per_matrix_entry=1.0,
        )
        assert model.parallel_time(10, 100) > 100 * 100 * 0.5

    def test_invalid_processor_count(self):
        with pytest.raises(ValidationError):
            ORIGIN_SCALING_MODEL.parallel_time(100, 0)

    def test_predicted_table_structure(self):
        rows = predicted_scaling_table(n_items=1000, proc_counts=(2, 4))
        assert rows[0]["n_procs"] == 0
        assert rows[0]["paper_seconds"] is None  # not the paper's n
        assert len(rows) == 3

    def test_format_scaling_rows(self):
        rows = predicted_scaling_table()
        text = format_scaling_rows(rows, seconds_key="predicted_seconds", title="T1")
        assert "seq" in text and "48" in text

    def test_overhead_requires_parallel_rows(self):
        with pytest.raises(ValidationError):
            overhead_factor([{"n_procs": 0, "predicted_seconds": 1.0}])


class TestMeasuredScaling:
    def test_small_measured_table(self):
        rows = measured_scaling_table(20_000, proc_counts=(2, 4), repeats=1)
        assert rows[0]["n_procs"] == 0
        assert all(r["measured_seconds"] > 0 for r in rows)
        assert len(rows) == 3

    def test_crossover_helper_with_measured_key(self):
        rows = [
            {"n_procs": 0, "measured_seconds": 1.0},
            {"n_procs": 2, "measured_seconds": 2.0},
            {"n_procs": 4, "measured_seconds": 0.5},
        ]
        assert crossover_processors(rows, seconds_key="measured_seconds") == 4

    def test_crossover_none_when_never_faster(self):
        rows = [
            {"n_procs": 0, "measured_seconds": 1.0},
            {"n_procs": 2, "measured_seconds": 2.0},
        ]
        assert crossover_processors(rows, seconds_key="measured_seconds") is None


class TestRandomsDriver:
    def test_fields_and_paper_comparison(self):
        result = uniforms_per_h_call(8, 500, n_matrices=3, seed=1)
        assert result["n_calls"] == 3 * 8 * 8
        assert result["mean_uniforms"] > 0
        assert result["max_uniforms"] >= result["mean_uniforms"]
        # The qualitative claim: O(1) uniforms per call, bounded worst case.
        assert result["mean_uniforms"] < 5.0
        assert result["max_uniforms"] < 40

    def test_auto_dispatch_beats_forced_hrua(self):
        auto = uniforms_per_h_call(8, 50, n_matrices=3, method="auto", seed=2)
        hrua = uniforms_per_h_call(8, 50, n_matrices=3, method="hrua", seed=2)
        assert auto["mean_uniforms"] <= hrua["mean_uniforms"] + 0.5

    def test_validation(self):
        with pytest.raises(ValidationError):
            uniforms_per_h_call(0, 10)


class TestFigure1:
    def test_layout_fields(self):
        layout = figure1_layout(60, 6, seed=1)
        assert layout["source_sizes"].sum() == 60
        assert layout["target_sizes"].sum() == 60
        assert layout["communication_matrix"].sum() == 60
        assert np.array_equal(layout["communication_matrix"].sum(axis=0), layout["target_sizes"])
        assert np.array_equal(layout["communication_matrix"].sum(axis=1), layout["source_sizes"])

    def test_balanced_variant(self):
        layout = figure1_layout(30, 6, seed=1, uneven=False)
        assert layout["source_sizes"].tolist() == [5] * 6

    def test_render_contains_both_rows(self):
        layout = figure1_layout(36, 6, seed=2)
        text = render_layout(layout)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("v ")
        assert lines[1].startswith("v'")
