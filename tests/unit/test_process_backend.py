"""Unit tests for the process backend and its multiprocessing fabric."""

import numpy as np
import pytest

from repro.pro.backends.process import (
    ProcessBackend,
    ProcessFabric,
    _decode_payload,
    _encode_payload,
)
from repro.pro.machine import PROMachine
from repro.rng.counting import CountingRNG
from repro.util.errors import BackendError, ValidationError
from repro.util.timeouts import scale_timeout

pytestmark = pytest.mark.subprocess  # every test forks rank processes


class TestPayloadCodec:
    def test_array_roundtrip_preserves_dtype_shape_values(self):
        arr = np.arange(12, dtype=np.int64).reshape(3, 4)
        out = _decode_payload(_encode_payload(arr))
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_decoded_arrays_are_writable_copies(self):
        arr = np.arange(5)
        out = _decode_payload(_encode_payload(arr))
        out[0] = 99  # must not raise (frombuffer alone would be read-only)
        assert arr[0] == 0

    def test_nested_containers(self):
        payload = (3, [np.arange(2), {"k": np.ones(3)}], "text", None)
        out = _decode_payload(_encode_payload(payload))
        assert out[0] == 3
        assert np.array_equal(out[1][0], np.arange(2))
        assert np.array_equal(out[1][1]["k"], np.ones(3))
        assert out[2] == "text"
        assert out[3] is None

    def test_non_contiguous_arrays_supported(self):
        arr = np.arange(20).reshape(4, 5)[:, ::2]
        out = _decode_payload(_encode_payload(arr))
        assert np.array_equal(out, arr)


class TestProcessBackendRuns:
    def test_results_ordered_by_rank(self):
        machine = PROMachine(4, seed=0, backend="process")
        assert machine.run(lambda ctx: ctx.rank * 2).results == [0, 2, 4, 6]

    def test_collectives_and_p2p_work(self):
        machine = PROMachine(3, seed=0, backend="process")

        def program(ctx):
            ctx.comm.barrier()
            total = ctx.comm.allreduce(ctx.rank)
            gathered = ctx.comm.allgather(np.full(2, ctx.rank))
            return total, sum(int(g.sum()) for g in gathered)

        results = machine.run(program).results
        assert all(r == (3, 6) for r in results)

    def test_numpy_payloads_cross_ranks(self):
        machine = PROMachine(2, seed=0, backend="process")

        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send(np.arange(4, dtype=np.int32), 1)
                return None
            received = ctx.comm.recv(0)
            return received.dtype.str, received.tolist()

        results = machine.run(program).results
        assert results[1] == (np.dtype(np.int32).str, [0, 1, 2, 3])

    def test_cost_accounting_repatriated(self):
        machine = PROMachine(2, seed=0, backend="process")

        def program(ctx):
            ctx.log_compute(7)
            ctx.comm.send(np.arange(5), 1 - ctx.rank)
            ctx.comm.recv(1 - ctx.rank)
            return None

        report = machine.run(program).cost_report
        assert report.total("compute_ops") == 14
        assert report.total("words_sent") == 10
        assert report.total("words_received") == 10

    def test_random_variate_counting_repatriated(self):
        machine = PROMachine(2, seed=0, backend="process", count_random_variates=True)

        def program(ctx):
            assert isinstance(ctx.rng, CountingRNG)
            ctx.rng.random(10)
            return None

        result = machine.run(program)
        assert result.cost_report.total("random_variates") == 20

    def test_long_compute_survives_short_comm_timeout(self):
        # The fabric timeout bounds *blocked communication*, not compute:
        # a rank that crunches longer than the timeout must still finish.
        # Both sides scale with REPRO_TEST_TIMEOUT_FACTOR so the invariant
        # (sleep > timeout) survives slow CI runners.
        machine = PROMachine(2, seed=0, backend="process",
                             timeout=scale_timeout(0.5))
        nap = scale_timeout(1.2)

        def program(ctx):
            import time as _time
            _time.sleep(nap)  # longer than the fabric timeout
            return ctx.rank

        assert machine.run(program).results == [0, 1]

    def test_exception_in_rank_becomes_backend_error(self):
        def program(ctx):
            if ctx.rank == 1:
                raise RuntimeError("boom on rank 1")
            ctx.comm.barrier()

        with pytest.raises(BackendError, match="rank 1"):
            PROMachine(3, seed=0, backend="process",
                       timeout=scale_timeout(15)).run(program)

    def test_mismatched_fabric_rejected(self):
        backend = ProcessBackend()
        thread_machine = PROMachine(2, seed=0)
        contexts = thread_machine._build_contexts()  # wired to the in-process fabric
        with pytest.raises(BackendError, match="ProcessFabric"):
            backend.run(contexts, lambda ctx: None, (), {})

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ValidationError):
            ProcessBackend(start_method="no-such-method")


class TestProcessFabric:
    def test_out_of_order_tags_are_parked(self):
        machine = PROMachine(2, seed=0, backend="process")

        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send("first", 1, tag=1)
                ctx.comm.send("second", 1, tag=2)
                return None
            second = ctx.comm.recv(0, tag=2)  # arrives after tag=1: parks it
            first = ctx.comm.recv(0, tag=1)
            return first, second

        assert machine.run(program).results[1] == ("first", "second")

    def test_fabric_validates_n_procs(self):
        with pytest.raises(ValidationError):
            ProcessFabric(0)
