"""Unit tests for cost accounting and the analytic time model."""

import pytest

from repro.pro.cost import (
    LAPTOP_PYTHON_PARAMETERS,
    ORIGIN_2000_PARAMETERS,
    CostRecorder,
    CostReport,
    MachineParameters,
    SuperstepCost,
)
from repro.util.errors import ValidationError


class TestSuperstepCost:
    def test_merge_sums_fields(self):
        a = SuperstepCost(compute_ops=1, words_sent=2, words_received=3,
                          messages_sent=4, messages_received=5, random_variates=6)
        b = SuperstepCost(compute_ops=10, words_sent=20, words_received=30,
                          messages_sent=40, messages_received=50, random_variates=60)
        merged = a.merge(b)
        assert merged.compute_ops == 11
        assert merged.words_sent == 22
        assert merged.random_variates == 66

    def test_h_relation_is_max_of_directions(self):
        step = SuperstepCost(words_sent=10, words_received=25)
        assert step.h_relation == 25


class TestCostRecorder:
    def test_starts_with_one_superstep(self):
        rec = CostRecorder(0)
        assert rec.current_superstep == 0
        assert len(rec.supersteps) == 1

    def test_next_superstep_advances(self):
        rec = CostRecorder(0)
        rec.add_compute(5)
        rec.next_superstep()
        rec.add_compute(7)
        assert len(rec.supersteps) == 2
        assert rec.supersteps[0].compute_ops == 5
        assert rec.supersteps[1].compute_ops == 7

    def test_total_aggregates(self):
        rec = CostRecorder(0)
        rec.record_send(10)
        rec.next_superstep()
        rec.record_send(5)
        rec.record_receive(3)
        total = rec.total()
        assert total.words_sent == 15
        assert total.words_received == 3
        assert total.messages_sent == 2

    def test_memory_peak_tracking(self):
        rec = CostRecorder(0)
        rec.allocate(100)
        rec.allocate(50)
        rec.release(120)
        rec.allocate(30)
        assert rec.memory_words_peak == 150

    def test_release_never_goes_negative(self):
        rec = CostRecorder(0)
        rec.release(10)
        rec.allocate(5)
        assert rec.memory_words_peak == 5

    def test_as_dict_keys(self):
        d = CostRecorder(3).as_dict()
        assert d["rank"] == 3
        for key in ("compute_ops", "words_sent", "random_variates", "memory_words_peak"):
            assert key in d


class TestMachineParameters:
    def test_validation_rejects_negative(self):
        with pytest.raises(ValidationError):
            MachineParameters(seconds_per_op=-1).validate()

    def test_superstep_time_combines_terms(self):
        params = MachineParameters(
            seconds_per_op=1.0, seconds_per_word=10.0, seconds_per_message=100.0,
            seconds_per_variate=1000.0, hop_factor=0.0,
        )
        step = SuperstepCost(compute_ops=2, words_sent=3, words_received=1,
                             messages_sent=1, messages_received=1, random_variates=1)
        # 2*1 + max(3,1)*10 + 2*100 + 1*1000 = 1232
        assert params.superstep_time(step) == pytest.approx(1232.0)

    def test_hop_factor_increases_cost(self):
        params = MachineParameters(seconds_per_word=1.0, seconds_per_op=0, seconds_per_message=0,
                                   seconds_per_variate=0, hop_factor=0.5)
        step = SuperstepCost(words_sent=10)
        near = params.superstep_time(step, average_hops=1.0)
        far = params.superstep_time(step, average_hops=3.0)
        assert far > near

    def test_presets_are_valid(self):
        ORIGIN_2000_PARAMETERS.validate()
        LAPTOP_PYTHON_PARAMETERS.validate()


class TestCostReport:
    def _two_rank_report(self):
        rec0, rec1 = CostRecorder(0), CostRecorder(1)
        rec0.add_compute(100)
        rec0.record_send(10)
        rec1.add_compute(50)
        rec1.record_send(30)
        rec1.next_superstep()
        rec1.add_compute(50)
        return CostReport([rec0, rec1])

    def test_requires_recorders(self):
        with pytest.raises(ValidationError):
            CostReport([])

    def test_totals(self):
        report = self._two_rank_report()
        assert report.total("compute_ops") == 200
        assert report.total("words_sent") == 40

    def test_max_over_ranks(self):
        report = self._two_rank_report()
        assert report.max_over_ranks("compute_ops") == 100

    def test_imbalance(self):
        report = self._two_rank_report()
        assert report.imbalance("compute_ops") == pytest.approx(1.0)
        assert report.imbalance("words_sent") == pytest.approx(30 / 20)

    def test_imbalance_all_zero_is_one(self):
        report = CostReport([CostRecorder(0), CostRecorder(1)])
        assert report.imbalance("compute_ops") == 1.0

    def test_predicted_time_modes(self):
        report = self._two_rank_report()
        params = MachineParameters(seconds_per_op=1.0, seconds_per_word=0.0,
                                   seconds_per_message=0.0, seconds_per_variate=0.0)
        bsp = report.predicted_time(params, mode="bsp")
        optimistic = report.predicted_time(params, mode="max")
        # BSP: step0 max(100, 50) + step1 max(0, 50) = 150; max mode: max(100, 100) = 100
        assert bsp == pytest.approx(150.0)
        assert optimistic == pytest.approx(100.0)
        assert bsp >= optimistic

    def test_predicted_time_unknown_mode(self):
        with pytest.raises(ValidationError):
            self._two_rank_report().predicted_time(MachineParameters(), mode="average")

    def test_summary_table_mentions_all_ranks(self):
        table = self._two_rank_report().summary_table()
        assert "0" in table and "1" in table

    def test_as_dict(self):
        d = self._two_rank_report().as_dict()
        assert d["n_procs"] == 2
        assert d["compute_ops_total"] == 200
