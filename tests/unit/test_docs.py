"""Docs-site and docstring health: links resolve, examples actually run.

Three layers of protection, none of which needs the mkdocs toolchain:

* the stdlib link checker (``docs/check_links.py``, also run by the CI
  docs job next to ``mkdocs build --strict``) finds broken internal
  references in ``docs/`` and the README;
* the README's fenced Python blocks are executed -- the quickstart as a
  script, the ``pool()`` example through doctest -- so the front page
  cannot silently rot;
* the public driver/API surface's docstring examples run under doctest
  (every public callable documents ``backend=`` / ``transport=`` /
  ``persistent=`` / ``schedule_seed=`` with a runnable example).
"""

import doctest
import importlib.util
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def _load_check_links():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO / "docs" / "check_links.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsSite:
    def test_site_skeleton_exists(self):
        assert (REPO / "mkdocs.yml").exists()
        for page in ("index.md", "architecture.md", "warm-pools.md",
                     "kernels.md", "writing-a-backend.md",
                     "determinism-and-faults.md", "observability.md",
                     "cli.md"):
            assert (REPO / "docs" / page).exists(), page

    def test_no_broken_internal_links(self):
        errors = _load_check_links().check()
        assert errors == []


def _readme_python_blocks():
    text = (REPO / "README.md").read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeExamples:
    @pytest.mark.subprocess  # the quickstart spawns a process-backend fleet
    def test_quickstart_block_runs(self):
        blocks = [b for b in _readme_python_blocks() if ">>>" not in b]
        assert blocks, "README lost its quickstart code block"
        from repro.pro.backends.pool import clear_default_pools

        try:
            exec(compile(blocks[0], "README.md:quickstart", "exec"), {})
        finally:
            clear_default_pools()

    @pytest.mark.subprocess
    def test_pool_example_doctests(self):
        blocks = [b for b in _readme_python_blocks() if ">>>" in b]
        assert blocks, "README lost its doctested pool() example"
        parser = doctest.DocTestParser()
        runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS)
        for i, block in enumerate(blocks):
            test = parser.get_doctest(block, {}, f"README-block-{i}",
                                      "README.md", 0)
            runner.run(test)
        assert runner.failures == 0, f"README doctest failures: {runner.failures}"
        assert runner.tries > 0


def _public_modules():
    import importlib

    return [importlib.import_module(name) for name in (
        "repro.core.api", "repro.core.parallel_matrix",
        "repro.core.permutation", "repro.pro.machine",
        "repro.pro.backends.pool", "repro.pro.telemetry",
    )]


class TestDocstringExamples:
    @pytest.mark.subprocess  # pool examples spawn (and clear) a warm fleet
    @pytest.mark.parametrize("module", _public_modules(),
                             ids=lambda m: m.__name__)
    def test_module_doctests_pass(self, module):
        from repro.pro.backends.pool import clear_default_pools

        try:
            result = doctest.testmod(module, verbose=False)
        finally:
            clear_default_pools()
        assert result.failed == 0, f"{module.__name__}: {result.failed} failed"
        assert result.attempted > 0, f"{module.__name__} has no examples"

    def test_driver_docstrings_cover_the_machine_options(self):
        """Every public driver documents all five machine options."""
        from repro.core.api import sample_communication_matrix
        from repro.core.parallel_matrix import sample_matrix_parallel
        from repro.core.permutation import (
            permute_distributed,
            random_permutation,
            random_permutation_indices,
        )

        for fn in (sample_communication_matrix, sample_matrix_parallel,
                   permute_distributed, random_permutation,
                   random_permutation_indices):
            doc = fn.__doc__
            for option in ("backend", "transport", "persistent",
                           "schedule_seed", "kernels", "telemetry"):
                assert option in doc, (fn.__name__, option)
            assert ">>>" in doc or fn is permute_distributed, fn.__name__
