"""Unit tests for the baseline algorithms (Fisher-Yates, sample sort, sort-based,
dart throwing, rejection)."""

import numpy as np
import pytest

from repro.baselines.dart_throwing import (
    dart_throwing_permutation,
    dart_throwing_program,
    iterated_dart_throwing,
)
from repro.baselines.fisher_yates import (
    fisher_yates,
    fisher_yates_inplace,
    per_item_cost,
    sequential_permutation,
)
from repro.baselines.rejection import (
    RejectionStatistics,
    acceptance_probability,
    rejection_permutation,
)
from repro.baselines.samplesort import parallel_sample_sort
from repro.baselines.sort_based import sort_based_permutation
from repro.pro.machine import PROMachine
from repro.rng.counting import CountingRNG
from repro.util.errors import ValidationError


class TestFisherYates:
    def test_inplace_preserves_multiset(self, rng):
        data = np.array([4, 4, 2, 7, 1])
        fisher_yates_inplace(data, rng)
        assert sorted(data.tolist()) == [1, 2, 4, 4, 7]

    def test_copy_variant_leaves_input(self, rng):
        data = np.arange(10)
        out = fisher_yates(data, rng)
        assert np.array_equal(data, np.arange(10))
        assert sorted(out.tolist()) == list(range(10))

    def test_works_on_python_lists(self, rng):
        data = list(range(8))
        fisher_yates_inplace(data, rng)
        assert sorted(data) == list(range(8))

    def test_consumes_exactly_n_minus_one_variates(self):
        rng = CountingRNG(0)
        fisher_yates_inplace(np.arange(25), rng)
        assert rng.integers_drawn == 24

    def test_sequential_permutation_numpy(self, rng):
        out = sequential_permutation(np.arange(30), rng, method="numpy")
        assert sorted(out.tolist()) == list(range(30))

    def test_sequential_permutation_python(self, rng):
        out = sequential_permutation(np.arange(30), rng, method="python")
        assert sorted(out.tolist()) == list(range(30))

    def test_sequential_permutation_unknown_method(self, rng):
        with pytest.raises(ValidationError):
            sequential_permutation(np.arange(5), rng, method="quantum")

    def test_uniformity_of_python_loop(self):
        """The pure-Python Fisher-Yates is uniform (position occupancy check)."""
        rng = np.random.default_rng(77)
        n, trials = 5, 3000
        occupancy = np.zeros((n, n))
        for _ in range(trials):
            perm = fisher_yates(np.arange(n), rng)
            occupancy[perm, np.arange(n)] += 1
        expected = trials / n
        chi2 = ((occupancy - expected) ** 2 / expected).sum()
        from scipy import stats as scipy_stats
        assert scipy_stats.chi2.sf(chi2, (n - 1) ** 2) > 1e-4

    def test_per_item_cost_fields(self):
        result = per_item_cost(10_000, repeats=1, seed=0)
        assert result["n_items"] == 10_000
        assert result["seconds"] > 0
        assert result["per_item_ns"] > 0

    def test_per_item_cost_rejects_zero_items(self):
        with pytest.raises(ValidationError):
            per_item_cost(0)


class TestParallelSampleSort:
    def test_sorts_globally(self):
        rng = np.random.default_rng(0)
        blocks = [rng.integers(0, 1000, 40) for _ in range(4)]
        sorted_blocks, _ = parallel_sample_sort(blocks, seed=1)
        merged = np.concatenate(sorted_blocks)
        assert np.array_equal(merged, np.sort(np.concatenate(blocks)))

    def test_blocks_stay_reasonably_balanced(self):
        rng = np.random.default_rng(1)
        blocks = [rng.random(250) for _ in range(4)]
        sorted_blocks, _ = parallel_sample_sort(blocks, seed=2)
        sizes = [len(b) for b in sorted_blocks]
        assert max(sizes) <= 3 * (1000 // 4)

    def test_single_processor(self):
        blocks = [np.array([3, 1, 2])]
        sorted_blocks, _ = parallel_sample_sort(blocks, seed=0)
        assert sorted_blocks[0].tolist() == [1, 2, 3]

    def test_duplicate_heavy_input(self):
        blocks = [np.full(50, 7), np.full(50, 7), np.arange(10)]
        sorted_blocks, _ = parallel_sample_sort(blocks, seed=3)
        merged = np.concatenate(sorted_blocks)
        assert np.array_equal(merged, np.sort(np.concatenate(blocks)))

    def test_empty_blocks(self):
        blocks = [np.empty(0, dtype=np.int64), np.arange(5), np.empty(0, dtype=np.int64)]
        sorted_blocks, _ = parallel_sample_sort(blocks, seed=4)
        assert np.concatenate(sorted_blocks).tolist() == [0, 1, 2, 3, 4]

    def test_machine_size_mismatch(self):
        with pytest.raises(ValidationError):
            parallel_sample_sort([np.arange(3)] * 3, machine=PROMachine(2, seed=0))

    def test_no_blocks_rejected(self):
        with pytest.raises(ValidationError):
            parallel_sample_sort([])

    def test_log_factor_work_recorded(self):
        """The sample-sort cost report shows the n log n work (E6's log factor)."""
        blocks = [np.random.default_rng(i).random(500) for i in range(4)]
        _, run = parallel_sample_sort(blocks, seed=5)
        total_ops = run.cost_report.total("compute_ops")
        n = 2000
        assert total_ops > n * np.log2(n) * 0.5  # clearly super-linear accounting


class TestSortBasedPermutation:
    def test_output_is_permutation(self):
        out, _ = sort_based_permutation(np.arange(300), n_procs=4, seed=0)
        assert sorted(out.tolist()) == list(range(300))

    def test_output_differs_from_input_order(self):
        out, _ = sort_based_permutation(np.arange(300), n_procs=4, seed=0)
        assert not np.array_equal(out, np.arange(300))

    def test_duplicate_values_supported(self):
        data = np.array([5] * 20 + [3] * 20)
        out, _ = sort_based_permutation(data, n_procs=2, seed=1)
        assert sorted(out.tolist()) == sorted(data.tolist())

    def test_empty_input(self):
        out, _ = sort_based_permutation(np.empty(0, dtype=np.int64), n_procs=2, seed=0)
        assert out.size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            sort_based_permutation(np.zeros((2, 2)), n_procs=2)

    def test_uniform_position_occupancy(self):
        """Sort-based permutation IS uniform -- it should pass the occupancy test."""
        from scipy import stats as scipy_stats
        n, trials = 6, 400
        machine = PROMachine(2, seed=123)
        occupancy = np.zeros((n, n))
        for _ in range(trials):
            out, _ = sort_based_permutation(np.arange(n), machine=machine)
            occupancy[out, np.arange(n)] += 1
        expected = trials / n
        chi2 = ((occupancy - expected) ** 2 / expected).sum()
        assert scipy_stats.chi2.sf(chi2, (n - 1) ** 2) > 1e-4

    def test_random_key_variates_charged(self):
        _, run = sort_based_permutation(np.arange(100), n_procs=4, seed=2)
        assert run.cost_report.total("random_variates") >= 100


class TestDartThrowing:
    def test_preserves_multiset(self):
        out, _ = dart_throwing_permutation(np.arange(200), n_procs=4, seed=0)
        assert sorted(out.tolist()) == list(range(200))

    def test_block_sizes_fluctuate(self):
        """Dart throwing does NOT respect the exact target layout (balance failure)."""
        machine = PROMachine(4, seed=9)
        blocks_sizes = []
        for _ in range(20):
            data = np.arange(64)
            bounds = np.linspace(0, 64, 5).astype(int)
            blocks = [data[bounds[i]:bounds[i + 1]] for i in range(4)]
            run = machine.run(lambda ctx: dart_throwing_program(ctx, blocks[ctx.rank]))
            blocks_sizes.append([len(b) for b in run.results])
        sizes = np.array(blocks_sizes)
        assert sizes.sum(axis=1).tolist() == [64] * 20
        assert sizes.std() > 0  # not always exactly 16 per processor

    def test_multiple_rounds(self):
        out, run = iterated_dart_throwing(np.arange(100), n_procs=4, rounds=3, seed=1)
        assert sorted(out.tolist()) == list(range(100))
        assert run.cost_report.n_supersteps() >= 3

    def test_rounds_validation(self):
        machine = PROMachine(2, seed=0)
        with pytest.raises(Exception):
            machine.run(lambda ctx: dart_throwing_program(ctx, np.arange(4), rounds=0))

    def test_work_scales_with_rounds(self):
        _, run1 = dart_throwing_permutation(np.arange(400), n_procs=4, seed=2, rounds=1)
        _, run3 = dart_throwing_permutation(np.arange(400), n_procs=4, seed=2, rounds=3)
        assert run3.cost_report.total("random_variates") > 2 * run1.cost_report.total("random_variates")

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            dart_throwing_permutation(np.zeros((2, 2)), n_procs=2)


class TestRejection:
    def test_acceptance_probability_single_block(self):
        assert acceptance_probability([10]) == pytest.approx(1.0)

    def test_acceptance_probability_decreases_with_p(self):
        probs = [acceptance_probability([8] * p) for p in (2, 4, 8)]
        assert probs[0] > probs[1] > probs[2]

    def test_acceptance_probability_empty(self):
        assert acceptance_probability([]) == 1.0

    def test_successful_run(self):
        out, stats = rejection_permutation(np.arange(8), n_procs=2, seed=0, max_attempts=100000)
        assert sorted(out.tolist()) == list(range(8))
        assert stats.accepted
        assert stats.attempts >= 1
        assert stats.wasted_work_factor == stats.attempts

    def test_custom_target_sizes(self):
        out, stats = rejection_permutation(
            np.arange(6), n_procs=3, target_sizes=[2, 2, 2], seed=1, max_attempts=100000
        )
        assert sorted(out.tolist()) == list(range(6))

    def test_target_sizes_must_sum(self):
        with pytest.raises(ValidationError):
            rejection_permutation(np.arange(6), n_procs=2, target_sizes=[2, 2])

    def test_max_attempts_exhausted_raises(self):
        with pytest.raises(ValidationError, match="work-optimality"):
            rejection_permutation(np.arange(64), n_procs=16, seed=2, max_attempts=2)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            rejection_permutation(np.zeros((2, 2)), n_procs=2)

    def test_statistics_dataclass(self):
        stats = RejectionStatistics(attempts=3, accepted=True, items_processed=30)
        assert stats.wasted_work_factor == 3.0
