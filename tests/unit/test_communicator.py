"""Unit tests for the communicator (point-to-point and collectives).

All multi-rank behaviour is exercised through small PROMachine runs with the
thread backend -- that is the supported way to use a communicator.
"""

import operator

import numpy as np
import pytest

from repro.pro.communicator import payload_words
from repro.pro.machine import PROMachine
from repro.util.errors import BackendError


def run(n_procs, program, **kwargs):
    machine = PROMachine(n_procs, seed=1, **kwargs)
    return machine.run(program).results


class TestPayloadWords:
    def test_none_is_zero(self):
        assert payload_words(None) == 0

    def test_scalar_is_one(self):
        assert payload_words(7) == 1
        assert payload_words(3.5) == 1
        assert payload_words(np.int64(2)) == 1

    def test_numpy_array_counts_elements(self):
        assert payload_words(np.zeros((3, 4))) == 12

    def test_string_counts_words(self):
        assert payload_words("x" * 17) == 3

    def test_containers_recurse(self):
        assert payload_words([np.zeros(3), 2, None]) == 4
        assert payload_words((1, 2)) == 2

    def test_dict_counts_values_and_keys(self):
        assert payload_words({"a": np.zeros(5)}) == 6

    def test_unknown_object_is_one(self):
        class Thing:
            pass
        assert payload_words(Thing()) == 1


class TestPointToPoint:
    def test_send_recv_pair(self):
        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send({"value": 42}, dest=1)
                return None
            return ctx.comm.recv(0)
        results = run(2, program)
        assert results[1] == {"value": 42}

    def test_message_order_preserved(self):
        def program(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    ctx.comm.send(i, dest=1)
                return None
            return [ctx.comm.recv(0) for _ in range(5)]
        assert run(2, program)[1] == [0, 1, 2, 3, 4]

    def test_tag_matching_out_of_order(self):
        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send("first", dest=1, tag=1)
                ctx.comm.send("second", dest=1, tag=2)
                return None
            second = ctx.comm.recv(0, tag=2)
            first = ctx.comm.recv(0, tag=1)
            return (first, second)
        assert run(2, program)[1] == ("first", "second")

    def test_self_send_recv(self):
        def program(ctx):
            ctx.comm.send("loop", dest=ctx.rank, tag=9)
            return ctx.comm.recv(ctx.rank, tag=9)
        assert run(2, program) == ["loop", "loop"]

    def test_sendrecv_exchange(self):
        def program(ctx):
            partner = 1 - ctx.rank
            return ctx.comm.sendrecv(f"from {ctx.rank}", dest=partner, source=partner)
        results = run(2, program)
        assert results == ["from 1", "from 0"]

    def test_numpy_payload_roundtrip(self):
        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send(np.arange(10), dest=1)
                return None
            return ctx.comm.recv(0)
        assert np.array_equal(run(2, program)[1], np.arange(10))

    def test_invalid_destination_raises(self):
        def program(ctx):
            ctx.comm.send(1, dest=5)
        with pytest.raises(BackendError):
            run(2, program)

    def test_recv_timeout_raises_communication_error(self):
        def program(ctx):
            if ctx.rank == 1:
                ctx.comm.recv(0, tag=77)  # never sent
            return None
        from repro.util.timeouts import scale_timeout

        machine = PROMachine(2, seed=0, timeout=scale_timeout(0.3))
        with pytest.raises(BackendError) as excinfo:
            machine.run(program)
        assert "timed out" in str(excinfo.value) or "failed" in str(excinfo.value)


class TestCollectives:
    def test_barrier_increments_superstep(self):
        def program(ctx):
            ctx.comm.barrier()
            ctx.comm.barrier()
            return ctx.cost.current_superstep
        assert run(3, program) == [2, 2, 2]

    @pytest.mark.parametrize("n_procs", [1, 2, 3, 4, 5, 8])
    def test_bcast_from_root_zero(self, n_procs):
        def program(ctx):
            payload = {"data": list(range(5))} if ctx.rank == 0 else None
            return ctx.comm.bcast(payload, root=0)
        results = run(n_procs, program)
        assert all(r == {"data": [0, 1, 2, 3, 4]} for r in results)

    def test_bcast_from_nonzero_root(self):
        def program(ctx):
            payload = "hello" if ctx.rank == 2 else None
            return ctx.comm.bcast(payload, root=2)
        assert run(5, program) == ["hello"] * 5

    @pytest.mark.parametrize("n_procs", [1, 2, 3, 5, 8])
    def test_reduce_sum(self, n_procs):
        def program(ctx):
            return ctx.comm.reduce(ctx.rank + 1, root=0)
        results = run(n_procs, program)
        assert results[0] == sum(range(1, n_procs + 1))
        assert all(r is None for r in results[1:])

    def test_reduce_non_default_root_and_op(self):
        def program(ctx):
            return ctx.comm.reduce(ctx.rank + 1, op=operator.mul, root=1)
        results = run(4, program)
        assert results[1] == 24

    @pytest.mark.parametrize("n_procs", [1, 2, 3, 4, 7])
    def test_allreduce(self, n_procs):
        def program(ctx):
            return ctx.comm.allreduce(ctx.rank)
        assert run(n_procs, program) == [sum(range(n_procs))] * n_procs

    def test_allreduce_max(self):
        def program(ctx):
            return ctx.comm.allreduce(ctx.rank * 10, op=max)
        assert run(4, program) == [30, 30, 30, 30]

    def test_gather(self):
        def program(ctx):
            return ctx.comm.gather(ctx.rank ** 2, root=0)
        results = run(4, program)
        assert results[0] == [0, 1, 4, 9]
        assert results[1] is None

    def test_allgather(self):
        def program(ctx):
            return ctx.comm.allgather(chr(ord("a") + ctx.rank))
        assert run(3, program) == [["a", "b", "c"]] * 3

    def test_scatter(self):
        def program(ctx):
            objs = [i * 100 for i in range(ctx.n_procs)] if ctx.rank == 0 else None
            return ctx.comm.scatter(objs, root=0)
        assert run(4, program) == [0, 100, 200, 300]

    def test_scatter_wrong_length_raises(self):
        # Non-root ranks are recv-blocked when the root's validation
        # error aborts the run; on the thread backend they would sit out
        # the full communication timeout (this test used to take 60s).
        # The sim backend proves the deadlock immediately instead.
        def program(ctx):
            objs = [1, 2] if ctx.rank == 0 else None
            return ctx.comm.scatter(objs, root=0)
        with pytest.raises(BackendError, match="rank 0"):
            run(3, program, backend="sim")

    def test_alltoall(self):
        def program(ctx):
            payloads = [f"{ctx.rank}->{dest}" for dest in range(ctx.n_procs)]
            return ctx.comm.alltoall(payloads)
        results = run(3, program)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_alltoall_wrong_length(self):
        def program(ctx):
            return ctx.comm.alltoall([1])
        with pytest.raises(BackendError):
            run(3, program)

    def test_alltoallv_arrays(self):
        def program(ctx):
            arrays = [np.full(dest + 1, ctx.rank) for dest in range(ctx.n_procs)]
            received = ctx.comm.alltoallv(arrays)
            return [r.tolist() for r in received]
        results = run(3, program)
        # rank 2 receives arrays of length 3 from every source
        assert results[2] == [[0, 0, 0], [1, 1, 1], [2, 2, 2]]

    def test_scan_inclusive(self):
        def program(ctx):
            return ctx.comm.scan(ctx.rank + 1)
        assert run(4, program) == [1, 3, 6, 10]

    def test_scan_exclusive(self):
        def program(ctx):
            return ctx.comm.scan(ctx.rank + 1, inclusive=False)
        assert run(4, program) == [None, 1, 3, 6]

    def test_consecutive_collectives_do_not_mix(self):
        def program(ctx):
            first = ctx.comm.bcast(ctx.rank if ctx.rank == 0 else None, root=0)
            second = ctx.comm.bcast(ctx.rank if ctx.rank == 1 else None, root=1)
            total = ctx.comm.allreduce(1)
            return (first, second, total)
        results = run(4, program)
        assert all(r == (0, 1, 4) for r in results)

    def test_communication_is_charged_to_cost(self):
        def program(ctx):
            ctx.comm.bcast(np.zeros(100) if ctx.rank == 0 else None, root=0)
            return None
        machine = PROMachine(4, seed=0)
        run_result = machine.run(program)
        assert run_result.cost_report.total("words_sent") >= 300  # 3 tree edges x 100 words
