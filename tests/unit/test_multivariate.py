"""Unit tests for the multivariate hypergeometric module (Algorithm 2)."""

import itertools

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core import multivariate as mv
from repro.rng.counting import CountingRNG
from repro.util.errors import ValidationError


class TestValidation:
    def test_rejects_empty_classes(self):
        with pytest.raises(ValidationError):
            mv.sample_sequential(0, [])

    def test_rejects_overdraw(self):
        with pytest.raises(ValidationError):
            mv.sample_sequential(10, [2, 3])

    def test_rejects_negative_draws(self):
        with pytest.raises(ValidationError):
            mv.sample_sequential(-1, [2, 3])

    def test_unknown_strategy(self):
        with pytest.raises(ValidationError):
            mv.sample(2, [2, 3], strategy="quantum")


class TestExactQuantities:
    def test_pmf_sums_to_one(self):
        class_sizes = [3, 2, 2]
        n_draws = 4
        total = 0.0
        for counts in itertools.product(range(5), repeat=3):
            total += mv.pmf(list(counts), n_draws, class_sizes)
        assert total == pytest.approx(1.0)

    def test_pmf_outside_support_zero(self):
        assert mv.pmf([5, 0], 4, [3, 3]) == 0.0     # count exceeds class
        assert mv.pmf([1, 1], 4, [3, 3]) == 0.0     # wrong total
        assert mv.log_pmf([1, 1], 4, [3, 3]) == float("-inf")

    def test_pmf_shape_validation(self):
        with pytest.raises(ValidationError):
            mv.pmf([1, 1, 1], 2, [3, 3])

    def test_pmf_matches_product_formula(self):
        # P[(2,1)] with sizes (3,4), 3 draws: C(3,2)C(4,1)/C(7,3)
        expected = 3 * 4 / 35
        assert mv.pmf([2, 1], 3, [3, 4]) == pytest.approx(expected)

    def test_mean(self):
        assert np.allclose(mv.mean(6, [2, 4, 6]), [1.0, 2.0, 3.0])

    def test_covariance_properties(self):
        cov = mv.covariance(5, [4, 6, 10])
        # rows sum to ~0 because the counts sum to a constant
        assert np.allclose(cov.sum(axis=1), 0.0, atol=1e-12)
        assert np.all(np.diag(cov) >= 0)
        # marginal variance matches the univariate hypergeometric variance
        dist = scipy_stats.hypergeom(20, 4, 5)
        assert cov[0, 0] == pytest.approx(dist.var())

    def test_covariance_degenerate(self):
        assert np.allclose(mv.covariance(1, [1]), 0.0)


class TestSamplers:
    @pytest.mark.parametrize("strategy", ["sequential", "recursive", "numpy"])
    def test_counts_sum_to_draws(self, strategy, rng):
        for _ in range(20):
            counts = mv.sample(7, [4, 9, 2, 5], rng, strategy=strategy)
            assert counts.sum() == 7
            assert np.all(counts >= 0)
            assert np.all(counts <= np.array([4, 9, 2, 5]))

    @pytest.mark.parametrize("strategy", ["sequential", "recursive"])
    def test_marginals_match_hypergeometric(self, strategy):
        rng = np.random.default_rng(hash(strategy) % 2**32)
        class_sizes = [6, 10, 8]
        n_draws = 9
        samples = np.array([mv.sample(n_draws, class_sizes, rng, strategy=strategy) for _ in range(3000)])
        total = sum(class_sizes)
        for i, size in enumerate(class_sizes):
            dist = scipy_stats.hypergeom(total, size, n_draws)
            assert abs(samples[:, i].mean() - dist.mean()) < 0.15
            assert abs(samples[:, i].var() - dist.var()) < 0.3

    def test_zero_draws_gives_zero_vector(self, rng):
        assert mv.sample_sequential(0, [3, 4], rng).tolist() == [0, 0]

    def test_full_draw_gives_class_sizes(self, rng):
        assert mv.sample_sequential(7, [3, 4], rng).tolist() == [3, 4]

    def test_single_class(self, rng):
        assert mv.sample_sequential(3, [5], rng).tolist() == [3]

    def test_recursive_leaf_size(self, rng):
        counts = mv.sample_recursive(10, [3, 4, 5, 6], rng, leaf_size=2)
        assert counts.sum() == 10

    def test_sequential_and_recursive_same_distribution(self):
        # Compare empirical distributions of the first coordinate.
        class_sizes = [5, 5, 5]
        n_draws = 7
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(12)
        a = np.array([mv.sample_sequential(n_draws, class_sizes, rng_a)[0] for _ in range(4000)])
        b = np.array([mv.sample_recursive(n_draws, class_sizes, rng_b)[0] for _ in range(4000)])
        # Two-sample chi-square over the support
        values = np.arange(0, 6)
        table = np.array([[np.sum(a == v) for v in values], [np.sum(b == v) for v in values]])
        keep = table.sum(axis=0) > 0
        _, p_value, _, _ = scipy_stats.chi2_contingency(table[:, keep])
        assert p_value > 1e-4

    def test_numpy_strategy_with_counting_rng(self):
        counting = CountingRNG(0)
        counts = mv.sample(4, [3, 3, 3], counting, strategy="numpy")
        assert counts.sum() == 4

    def test_reproducible_with_seed(self):
        a = mv.sample_sequential(9, [4, 7, 6], np.random.default_rng(3))
        b = mv.sample_sequential(9, [4, 7, 6], np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_classes_with_zero_size(self, rng):
        counts = mv.sample_sequential(4, [0, 5, 0, 5], rng)
        assert counts[0] == 0 and counts[2] == 0
        assert counts.sum() == 4
