"""Unit tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.errors import ValidationError
from repro.util.validation import (
    as_int_array,
    check_in_range,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
    check_same_total,
    check_vector_of_nonnegative_ints,
)


class TestCheckNonnegativeInt:
    def test_accepts_plain_int(self):
        assert check_nonnegative_int(5, "x") == 5

    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_accepts_numpy_integer(self):
        assert check_nonnegative_int(np.int64(7), "x") == 7

    def test_accepts_integral_float(self):
        assert check_nonnegative_int(3.0, "x") == 3

    def test_rejects_fractional_float(self):
        with pytest.raises(ValidationError):
            check_nonnegative_int(3.5, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="must be >= 0"):
            check_nonnegative_int(-1, "x")

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            check_nonnegative_int("five", "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ValidationError, match="n_procs"):
            check_nonnegative_int(-3, "n_procs")


class TestCheckPositiveInt:
    def test_accepts_one(self):
        assert check_positive_int(1, "x") == 1

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="must be >= 1"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive_int(-2, "x")


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_accepts_interior(self):
        assert check_probability(0.25, "p") == 0.25

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            check_probability(1.5, "p")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_probability(-0.1, "p")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_probability(float("nan"), "p")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_probability("a lot", "p")


class TestAsIntArray:
    def test_list_of_ints(self):
        arr = as_int_array([1, 2, 3], "v")
        assert arr.dtype == np.int64
        assert arr.tolist() == [1, 2, 3]

    def test_integral_floats_converted(self):
        arr = as_int_array([1.0, 2.0], "v")
        assert arr.tolist() == [1, 2]

    def test_fractional_floats_rejected(self):
        with pytest.raises(ValidationError):
            as_int_array([1.5, 2.0], "v")

    def test_rejects_2d(self):
        with pytest.raises(ValidationError, match="1-D"):
            as_int_array(np.zeros((2, 2)), "v")

    def test_empty_allowed(self):
        assert as_int_array([], "v").size == 0

    def test_rejects_strings(self):
        with pytest.raises(ValidationError):
            as_int_array(["a", "b"], "v")


class TestCheckVectorOfNonnegativeInts:
    def test_accepts_nonnegative(self):
        arr = check_vector_of_nonnegative_ints([0, 4, 2], "v")
        assert arr.tolist() == [0, 4, 2]

    def test_rejects_negative_entries(self):
        with pytest.raises(ValidationError, match="elementwise"):
            check_vector_of_nonnegative_ints([1, -1], "v")


class TestCheckSameTotal:
    def test_equal_totals(self):
        assert check_same_total([1, 2, 3], [6], "a", "b") == 6

    def test_unequal_totals_raise(self):
        with pytest.raises(ValidationError, match="same number of items"):
            check_same_total([1, 2], [4], "a", "b")

    def test_empty_vectors(self):
        assert check_same_total([], [], "a", "b") == 0


class TestCheckInRange:
    def test_inside(self):
        assert check_in_range(5, 0, 10, "x") == 5

    def test_bounds_inclusive(self):
        assert check_in_range(0, 0, 10, "x") == 0
        assert check_in_range(10, 0, 10, "x") == 10

    def test_outside_raises(self):
        with pytest.raises(ValidationError):
            check_in_range(11, 0, 10, "x")
