"""Unit tests for the execution-backend registry."""

import pytest

from repro.pro.backends import (
    BackendCapabilities,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    available_backends,
    backend_capabilities,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.pro.backends.registry import unregister_backend
from repro.pro.machine import PROMachine
from repro.util.errors import ValidationError


class TestRegistryLookups:
    def test_builtins_are_registered(self):
        names = available_backends()
        assert {"inline", "thread", "process"} <= set(names)

    def test_get_backend_builds_instances(self):
        assert isinstance(get_backend("inline"), InlineBackend)
        assert isinstance(get_backend("thread"), ThreadBackend)
        assert isinstance(get_backend("process"), ProcessBackend)

    def test_get_backend_forwards_options(self):
        backend = get_backend("process", shutdown_grace=1.5)
        assert backend.shutdown_grace == 1.5

    def test_unknown_name_rejected_with_choices(self):
        with pytest.raises(ValidationError, match="thread"):
            get_backend("gpu")

    def test_capabilities_by_name(self):
        assert backend_capabilities("inline").multirank is False
        assert backend_capabilities("thread").multirank is True
        assert backend_capabilities("thread").true_parallelism is False
        process = backend_capabilities("process")
        assert process.true_parallelism is True
        assert process.shared_address_space is False

    def test_capabilities_unknown_name(self):
        with pytest.raises(ValidationError):
            backend_capabilities("gpu")


class TestRegistration:
    def test_register_and_use_custom_backend(self):
        class EchoBackend(ExecutionBackend):
            name = "echo-test"
            capabilities = BackendCapabilities(multirank=False, blocking_p2p=False)

            def run(self, contexts, program, args, kwargs):
                return [program(ctx, *args, **kwargs) for ctx in contexts]

        register_backend("echo-test", EchoBackend, description="test backend")
        try:
            machine = PROMachine(1, backend="echo-test", seed=0)
            assert machine.run(lambda ctx: ctx.rank + 40).results == [40]
        finally:
            unregister_backend("echo-test")

    def test_duplicate_name_rejected_without_overwrite(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_backend("thread", ThreadBackend)

    def test_overwrite_allowed_explicitly(self):
        spec = register_backend(
            "thread-dup-test", ThreadBackend, description="first"
        )
        try:
            assert spec.description == "first"
            spec = register_backend(
                "thread-dup-test", ThreadBackend, description="second", overwrite=True
            )
            assert spec.description == "second"
        finally:
            unregister_backend("thread-dup-test")

    def test_factory_without_capabilities_rejected(self):
        with pytest.raises(ValidationError, match="BackendCapabilities"):
            register_backend("broken-test", lambda: object())

    def test_bad_names_rejected(self):
        with pytest.raises(ValidationError):
            register_backend("", ThreadBackend)
        with pytest.raises(ValidationError):
            register_backend(None, ThreadBackend)


class TestResolveBackend:
    def test_string_goes_through_registry(self):
        assert isinstance(resolve_backend("thread"), ThreadBackend)

    def test_instances_pass_through(self):
        backend = ThreadBackend()
        assert resolve_backend(backend) is backend

    def test_object_without_run_rejected(self):
        with pytest.raises(ValidationError):
            resolve_backend(object())

    def test_options_forwarded_to_named_factories(self):
        backend = resolve_backend("process", transport="pickle")
        assert backend.transport.name == "pickle"

    def test_unsupported_options_rejected_with_message(self):
        with pytest.raises(ValidationError, match="does not accept"):
            resolve_backend("thread", transport="sharedmem")

    def test_options_rejected_for_instances(self):
        with pytest.raises(ValidationError, match="by name"):
            resolve_backend(ThreadBackend(), transport="sharedmem")


class TestMachineIntegration:
    def test_machine_rejects_multirank_on_inline(self):
        with pytest.raises(ValidationError, match="n_procs == 1"):
            PROMachine(2, backend="inline")

    def test_machine_accepts_every_builtin_at_p1(self):
        for name in ("inline", "thread", "process"):
            machine = PROMachine(1, backend=name, seed=0)
            assert machine.run(lambda ctx: ctx.n_procs).results == [1]

    def test_repr_names_backend(self):
        assert "process" in repr(PROMachine(2, backend="process"))
