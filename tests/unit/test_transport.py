"""Contract tests for the payload transports of the process backend.

Every transport must round-trip arbitrary payloads (arrays of any dtype,
nested containers, empty and huge arrays, plain objects), release
out-of-band resources for records that are never decoded (abort and
timeout paths), and never touch the random streams.  The shared-memory
transport additionally promises zero-copy receive views and a transparent
fallback to the pickle codec when segments cannot be created.
"""

import gc
import os

import numpy as np
import pytest

from repro.pro.backends import sharedmem as sharedmem_module
from repro.pro.backends.process import ProcessBackend, ProcessFabric
from repro.pro.backends.sharedmem import SharedMemoryTransport, shared_memory_available
from repro.pro.backends.transport import (
    SHMSEG,
    PickleTransport,
    available_transports,
    get_transport,
    resolve_transport,
)
from repro.pro.machine import PROMachine
from repro.util.errors import BackendError, ValidationError

TRANSPORTS = ["pickle", "sharedmem"]


def make_transport(name):
    if name == "sharedmem":
        # A tiny threshold so even small test arrays exercise the segments.
        return SharedMemoryTransport(min_bytes=16)
    return get_transport(name)


def shm_segments():
    """Names of the POSIX shared-memory segments currently linked."""
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()


PAYLOADS = [
    np.arange(1000, dtype=np.int64),
    np.arange(12, dtype=np.float32).reshape(3, 4),
    np.empty(0, dtype=np.int64),
    np.array(3.5),  # 0-d
    np.arange(1_000_000, dtype=np.int64),  # huge: 8 MB
    {"key": np.ones(300), "nested": (1, [np.zeros(5, dtype=bool), "text"])},
    (None, 42, "plain"),
    [np.arange(64, dtype=np.int16)[::2]],  # non-contiguous view
]


class TestTransportRegistry:
    def test_builtins_registered(self):
        assert set(TRANSPORTS) <= set(available_transports())

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValidationError, match="unknown transport"):
            get_transport("carrier-pigeon")

    def test_resolve_none_gives_pickle(self):
        assert isinstance(resolve_transport(None), PickleTransport)

    def test_resolve_instance_passthrough(self):
        transport = SharedMemoryTransport()
        assert resolve_transport(transport) is transport

    def test_resolve_rejects_non_transport(self):
        with pytest.raises(ValidationError, match="encode"):
            resolve_transport(object())

    def test_min_bytes_validated(self):
        with pytest.raises(ValidationError):
            SharedMemoryTransport(min_bytes=0)


class TestRoundTrip:
    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    @pytest.mark.parametrize("payload", PAYLOADS, ids=range(len(PAYLOADS)))
    def test_payload_roundtrip(self, transport_name, payload):
        transport = make_transport(transport_name)
        out = transport.decode(transport.encode(payload))

        def compare(a, b):
            if isinstance(a, np.ndarray):
                assert isinstance(b, np.ndarray)
                assert a.dtype == b.dtype
                assert a.shape == b.shape
                assert np.array_equal(a, b)
            elif isinstance(a, (list, tuple)):
                assert type(a) is type(b) and len(a) == len(b)
                for x, y in zip(a, b):
                    compare(x, y)
            elif isinstance(a, dict):
                assert set(a) == set(b)
                for k in a:
                    compare(a[k], b[k])
            else:
                assert a == b

        compare(payload, out)

    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    def test_structured_dtype_preserved(self, transport_name):
        dtype = np.dtype([("key", np.int64), ("value", np.float64)])
        data = np.zeros(400, dtype=dtype)
        data["key"] = np.arange(400)
        data["value"] = np.arange(400) * 0.5
        transport = make_transport(transport_name)
        out = transport.decode(transport.encode(data))
        assert out.dtype == dtype
        assert np.array_equal(out["key"], data["key"])
        assert np.allclose(out["value"], data["value"])

    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    def test_object_arrays_survive(self, transport_name):
        payload = np.array(["a", ("tuple",), None], dtype=object)
        transport = make_transport(transport_name)
        out = transport.decode(transport.encode(payload))
        assert out.dtype == object
        assert out.tolist() == payload.tolist()

    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    def test_decoded_arrays_are_writable_and_private(self, transport_name):
        original = np.arange(2048, dtype=np.int64)
        transport = make_transport(transport_name)
        out = transport.decode(transport.encode(original))
        out[0] = -99  # must not raise
        assert original[0] == 0


@pytest.mark.skipif(not shared_memory_available(), reason="no shared memory")
class TestSharedMemoryLifecycle:
    def test_bulk_arrays_use_segments(self):
        transport = SharedMemoryTransport(min_bytes=16)
        record = transport.encode(np.arange(1000, dtype=np.int64))
        assert record[0] == SHMSEG
        transport.dispose(record)

    def test_small_arrays_stay_inline(self):
        transport = SharedMemoryTransport(min_bytes=10**6)
        record = transport.encode(np.arange(100, dtype=np.int64))
        assert record[0] != SHMSEG

    def test_segment_unlinked_on_decode_and_freed_with_views(self):
        transport = SharedMemoryTransport(min_bytes=16)
        before = shm_segments()
        record = transport.encode(np.arange(5000, dtype=np.int64))
        assert shm_segments() - before  # the segment exists while in flight
        view = transport.decode(record)
        assert shm_segments() == before  # unlinked immediately on decode
        assert np.array_equal(view, np.arange(5000))
        del view
        gc.collect()

    def test_dispose_unlinks_undelivered_segments(self):
        transport = SharedMemoryTransport(min_bytes=16)
        before = shm_segments()
        record = transport.encode({"a": np.arange(4000), "b": np.ones(2000)})
        assert shm_segments() - before
        transport.dispose(record)
        assert shm_segments() == before

    def test_dispose_is_idempotent_and_ignores_inline_records(self):
        transport = SharedMemoryTransport(min_bytes=16)
        record = transport.encode(np.arange(1000))
        transport.dispose(record)
        transport.dispose(record)  # already unlinked: must not raise
        transport.dispose(transport.encode("just a string"))

    def test_unavailable_falls_back_to_inline(self, monkeypatch):
        monkeypatch.setattr(sharedmem_module, "_PROBE", (os.getpid(), False))
        transport = SharedMemoryTransport(min_bytes=16)
        record = transport.encode(np.arange(1000, dtype=np.int64))
        assert record[0] != SHMSEG
        assert np.array_equal(transport.decode(record), np.arange(1000))

    def test_creation_failure_degrades_gracefully(self, monkeypatch):
        transport = SharedMemoryTransport(min_bytes=16)

        def boom(*args, **kwargs):
            raise OSError("no space left on /dev/shm")

        monkeypatch.setattr(sharedmem_module._shm_module, "SharedMemory", boom)
        monkeypatch.setattr(sharedmem_module, "_PROBE", (os.getpid(), True))
        record = transport.encode(np.arange(1000, dtype=np.int64))
        assert record[0] != SHMSEG
        assert np.array_equal(PickleTransport().decode(record), np.arange(1000))


class TestFabricIntegration:
    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    def test_put_get_roundtrip(self, transport_name):
        fabric = ProcessFabric(2, timeout=5.0, transport=make_transport(transport_name))
        try:
            payload = {"data": np.arange(3000, dtype=np.int64), "tag": "x"}
            fabric.put(0, 1, "t", payload)
            out = fabric.get(0, 1, "t", [])
            assert np.array_equal(out["data"], payload["data"])
            assert out["tag"] == "x"
        finally:
            fabric.shutdown()

    def test_shutdown_disposes_inflight_sharedmem(self):
        if not shared_memory_available():
            pytest.skip("no shared memory")
        before = shm_segments()
        fabric = ProcessFabric(2, timeout=5.0,
                               transport=SharedMemoryTransport(min_bytes=16))
        fabric.put(0, 1, "never-received", np.arange(4000, dtype=np.int64))
        # Give the queue feeder a moment, then abort-style shutdown.
        fabric.abort()
        fabric.shutdown(drain_timeout=0.5)
        assert shm_segments() == before

    def test_fabric_name_reports_transport(self):
        fabric = ProcessFabric(1, transport="pickle")
        try:
            assert fabric.transport.name == "pickle"
        finally:
            fabric.shutdown()


class TestBackendIntegration:
    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    def test_machine_runs_with_transport(self, transport_name):
        machine = PROMachine(3, seed=4, backend="process",
                             backend_options={"transport": transport_name})
        assert machine.backend.transport.name == transport_name

        def program(ctx):
            gathered = ctx.comm.allgather(np.full(2000, ctx.rank, dtype=np.int64))
            return int(sum(g.sum() for g in gathered))

        assert machine.run(program).results == [6000, 6000, 6000]

    def test_abort_mid_transfer_leaves_no_segments(self):
        if not shared_memory_available():
            pytest.skip("no shared memory")
        before = shm_segments()
        machine = PROMachine(3, seed=0, backend="process", timeout=10)

        def program(ctx):
            if ctx.rank == 0:
                # Bulk payload nobody will ever receive, then crash.
                ctx.comm.send(np.arange(50_000, dtype=np.int64), 1, tag=9)
                raise RuntimeError("mid-transfer crash")
            ctx.comm.barrier()
            return ctx.rank

        with pytest.raises(BackendError, match="rank 0"):
            machine.run(program)
        assert shm_segments() - before == set()

    def test_unknown_transport_name_rejected(self):
        with pytest.raises(ValidationError):
            ProcessBackend(transport="bogus")

    def test_non_process_backend_rejects_transport_option(self):
        with pytest.raises(ValidationError, match="does not accept"):
            PROMachine(2, backend="thread", backend_options={"transport": "sharedmem"})

    def test_results_transported_through_sharedmem(self):
        machine = PROMachine(2, seed=1, backend="process",
                             backend_options={"transport": SharedMemoryTransport(min_bytes=16)})
        run = machine.run(lambda ctx: np.full(5000, ctx.rank, dtype=np.int64))
        assert np.array_equal(run.results[1], np.full(5000, 1))
        run.results[1][0] = 123  # zero-copy views must still be writable
