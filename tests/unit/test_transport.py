"""Contract tests for the payload transports of the process backend.

Every transport must round-trip arbitrary payloads (arrays of any dtype,
nested containers, empty and huge arrays, plain objects), release
out-of-band resources for records that are never decoded (abort and
timeout paths), and never touch the random streams.  The shared-memory
transport additionally promises zero-copy receive views and a transparent
fallback to the pickle codec when segments cannot be created.
"""

import gc
import os

import numpy as np
import pytest

from repro.pro.backends import sharedmem as sharedmem_module
from repro.pro.backends.process import ProcessBackend, ProcessFabric
from repro.pro.backends.sharedmem import (
    SharedMemoryTransport,
    _SenderRing,
    shared_memory_available,
)
from repro.pro.backends.transport import (
    SHMRING,
    SHMSEG,
    PickleTransport,
    available_transports,
    get_transport,
    resolve_transport,
)
from repro.pro.machine import PROMachine
from repro.util.errors import BackendError, ValidationError
from repro.util.timeouts import scale_timeout

TRANSPORTS = ["pickle", "sharedmem"]


def make_transport(name):
    if name == "sharedmem":
        # A tiny threshold so even small test arrays exercise the segments.
        return SharedMemoryTransport(min_bytes=16)
    return get_transport(name)


def shm_segments():
    """Names of the POSIX shared-memory segments currently linked."""
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()


PAYLOADS = [
    np.arange(1000, dtype=np.int64),
    np.arange(12, dtype=np.float32).reshape(3, 4),
    np.empty(0, dtype=np.int64),
    np.array(3.5),  # 0-d
    np.arange(1_000_000, dtype=np.int64),  # huge: 8 MB
    {"key": np.ones(300), "nested": (1, [np.zeros(5, dtype=bool), "text"])},
    (None, 42, "plain"),
    [np.arange(64, dtype=np.int16)[::2]],  # non-contiguous view
]


class TestTransportRegistry:
    def test_builtins_registered(self):
        assert set(TRANSPORTS) <= set(available_transports())

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValidationError, match="unknown transport"):
            get_transport("carrier-pigeon")

    def test_resolve_none_gives_pickle(self):
        assert isinstance(resolve_transport(None), PickleTransport)

    def test_resolve_instance_passthrough(self):
        transport = SharedMemoryTransport()
        assert resolve_transport(transport) is transport

    def test_resolve_rejects_non_transport(self):
        with pytest.raises(ValidationError, match="encode"):
            resolve_transport(object())

    def test_min_bytes_validated(self):
        with pytest.raises(ValidationError):
            SharedMemoryTransport(min_bytes=0)


class TestRoundTrip:
    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    @pytest.mark.parametrize("payload", PAYLOADS, ids=range(len(PAYLOADS)))
    def test_payload_roundtrip(self, transport_name, payload):
        transport = make_transport(transport_name)
        out = transport.decode(transport.encode(payload))

        def compare(a, b):
            if isinstance(a, np.ndarray):
                assert isinstance(b, np.ndarray)
                assert a.dtype == b.dtype
                assert a.shape == b.shape
                assert np.array_equal(a, b)
            elif isinstance(a, (list, tuple)):
                assert type(a) is type(b) and len(a) == len(b)
                for x, y in zip(a, b):
                    compare(x, y)
            elif isinstance(a, dict):
                assert set(a) == set(b)
                for k in a:
                    compare(a[k], b[k])
            else:
                assert a == b

        compare(payload, out)

    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    def test_structured_dtype_preserved(self, transport_name):
        dtype = np.dtype([("key", np.int64), ("value", np.float64)])
        data = np.zeros(400, dtype=dtype)
        data["key"] = np.arange(400)
        data["value"] = np.arange(400) * 0.5
        transport = make_transport(transport_name)
        out = transport.decode(transport.encode(data))
        assert out.dtype == dtype
        assert np.array_equal(out["key"], data["key"])
        assert np.allclose(out["value"], data["value"])

    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    def test_object_arrays_survive(self, transport_name):
        payload = np.array(["a", ("tuple",), None], dtype=object)
        transport = make_transport(transport_name)
        out = transport.decode(transport.encode(payload))
        assert out.dtype == object
        assert out.tolist() == payload.tolist()

    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    def test_decoded_arrays_are_writable_and_private(self, transport_name):
        original = np.arange(2048, dtype=np.int64)
        transport = make_transport(transport_name)
        out = transport.decode(transport.encode(original))
        out[0] = -99  # must not raise
        assert original[0] == 0


@pytest.mark.skipif(not shared_memory_available(), reason="no shared memory")
class TestSharedMemoryLifecycle:
    def test_bulk_arrays_use_segments(self):
        transport = SharedMemoryTransport(min_bytes=16)
        record = transport.encode(np.arange(1000, dtype=np.int64))
        assert record[0] == SHMSEG
        transport.dispose(record)

    def test_small_arrays_stay_inline(self):
        transport = SharedMemoryTransport(min_bytes=10**6)
        record = transport.encode(np.arange(100, dtype=np.int64))
        assert record[0] != SHMSEG

    def test_segment_unlinked_on_decode_and_freed_with_views(self):
        transport = SharedMemoryTransport(min_bytes=16)
        before = shm_segments()
        record = transport.encode(np.arange(5000, dtype=np.int64))
        assert shm_segments() - before  # the segment exists while in flight
        view = transport.decode(record)
        assert shm_segments() == before  # unlinked immediately on decode
        assert np.array_equal(view, np.arange(5000))
        del view
        gc.collect()

    def test_dispose_unlinks_undelivered_segments(self):
        transport = SharedMemoryTransport(min_bytes=16)
        before = shm_segments()
        record = transport.encode({"a": np.arange(4000), "b": np.ones(2000)})
        assert shm_segments() - before
        transport.dispose(record)
        assert shm_segments() == before

    def test_dispose_is_idempotent_and_ignores_inline_records(self):
        transport = SharedMemoryTransport(min_bytes=16)
        record = transport.encode(np.arange(1000))
        transport.dispose(record)
        transport.dispose(record)  # already unlinked: must not raise
        transport.dispose(transport.encode("just a string"))

    def test_unavailable_falls_back_to_inline(self, monkeypatch):
        monkeypatch.setattr(sharedmem_module, "_PROBE", (os.getpid(), False))
        transport = SharedMemoryTransport(min_bytes=16)
        record = transport.encode(np.arange(1000, dtype=np.int64))
        assert record[0] != SHMSEG
        assert np.array_equal(transport.decode(record), np.arange(1000))

    def test_creation_failure_degrades_gracefully(self, monkeypatch):
        transport = SharedMemoryTransport(min_bytes=16)

        def boom(*args, **kwargs):
            raise OSError("no space left on /dev/shm")

        monkeypatch.setattr(sharedmem_module._shm_module, "SharedMemory", boom)
        monkeypatch.setattr(sharedmem_module, "_PROBE", (os.getpid(), True))
        record = transport.encode(np.arange(1000, dtype=np.int64))
        assert record[0] != SHMSEG
        assert np.array_equal(PickleTransport().decode(record), np.arange(1000))


class TestFabricIntegration:
    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    def test_put_get_roundtrip(self, transport_name):
        fabric = ProcessFabric(2, timeout=scale_timeout(5.0),
                               transport=make_transport(transport_name))
        try:
            payload = {"data": np.arange(3000, dtype=np.int64), "tag": "x"}
            fabric.put(0, 1, "t", payload)
            out = fabric.get(0, 1, "t", [])
            assert np.array_equal(out["data"], payload["data"])
            assert out["tag"] == "x"
        finally:
            fabric.shutdown()

    def test_shutdown_disposes_inflight_sharedmem(self):
        if not shared_memory_available():
            pytest.skip("no shared memory")
        before = shm_segments()
        fabric = ProcessFabric(2, timeout=scale_timeout(5.0),
                               transport=SharedMemoryTransport(min_bytes=16))
        fabric.put(0, 1, "never-received", np.arange(4000, dtype=np.int64))
        # Give the queue feeder a moment, then abort-style shutdown.  The
        # drain grace must stretch with REPRO_TEST_TIMEOUT_FACTOR: on an
        # oversubscribed runner the feeder may not have flushed in 0.5s.
        fabric.abort()
        fabric.shutdown(drain_timeout=scale_timeout(0.5))
        assert shm_segments() == before

    def test_fabric_name_reports_transport(self):
        fabric = ProcessFabric(1, transport="pickle")
        try:
            assert fabric.transport.name == "pickle"
        finally:
            fabric.shutdown()


class TestBackendIntegration:
    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    def test_machine_runs_with_transport(self, transport_name):
        machine = PROMachine(3, seed=4, backend="process",
                             backend_options={"transport": transport_name})
        assert machine.backend.transport.name == transport_name

        def program(ctx):
            gathered = ctx.comm.allgather(np.full(2000, ctx.rank, dtype=np.int64))
            return int(sum(g.sum() for g in gathered))

        assert machine.run(program).results == [6000, 6000, 6000]

    def test_abort_mid_transfer_leaves_no_segments(self):
        if not shared_memory_available():
            pytest.skip("no shared memory")
        before = shm_segments()
        machine = PROMachine(3, seed=0, backend="process",
                             timeout=scale_timeout(10))

        def program(ctx):
            if ctx.rank == 0:
                # Bulk payload nobody will ever receive, then crash.
                ctx.comm.send(np.arange(50_000, dtype=np.int64), 1, tag=9)
                raise RuntimeError("mid-transfer crash")
            ctx.comm.barrier()
            return ctx.rank

        with pytest.raises(BackendError, match="rank 0"):
            machine.run(program)
        assert shm_segments() - before == set()

    def test_unknown_transport_name_rejected(self):
        with pytest.raises(ValidationError):
            ProcessBackend(transport="bogus")

    def test_non_process_backend_rejects_transport_option(self):
        with pytest.raises(ValidationError, match="does not accept"):
            PROMachine(2, backend="thread", backend_options={"transport": "sharedmem"})

    def test_results_transported_through_sharedmem(self):
        machine = PROMachine(2, seed=1, backend="process",
                             backend_options={"transport": SharedMemoryTransport(min_bytes=16)})
        run = machine.run(lambda ctx: np.full(5000, ctx.rank, dtype=np.int64))
        assert np.array_equal(run.results[1], np.full(5000, 1))
        run.results[1][0] = 123  # zero-copy views must still be writable


@pytest.mark.skipif(not shared_memory_available(), reason="no shared memory")
class TestRingWrapAround:
    """Receiver-acked ring slots: reclamation, wrap-around, fallback."""

    class _FakeShm:
        def __init__(self, size=256):
            self.size = size
            self.buf = memoryview(bytearray(size))

    def test_allocator_reclaims_acked_slots_in_order(self):
        ring = _SenderRing(self._FakeShm(256))
        assert ring.allocate(100) == (0, 128)    # 100 -> 128 aligned
        assert ring.allocate(100) == (128, 256)
        assert ring.allocate(100) is None        # full until acked
        ring.ack(256)                            # out of order: tail pinned
        assert ring.tail == 0
        ring.ack(128)                            # prefix complete: both free
        assert ring.tail == 256
        assert ring.reclaimed_bytes == 256

    def test_allocator_wraps_physically(self):
        ring = _SenderRing(self._FakeShm(256))
        first = ring.allocate(100)
        ring.ack(first[1])
        second = ring.allocate(100)
        ring.ack(second[1])
        third = ring.allocate(100)               # virtual 256: back to offset 0
        assert third == (0, 384)
        # a slot that would straddle the physical end skips to the boundary
        ring.ack(third[1])
        fourth = ring.allocate(160)              # phys 128 + 192 > 256: pad
        assert fourth[0] == 0
        assert ring.wraps == 1

    def test_allocator_rejects_oversize_and_duplicate_acks(self):
        ring = _SenderRing(self._FakeShm(256))
        assert ring.allocate(512) is None        # bigger than the ring
        slot = ring.allocate(64)
        ring.ack(slot[1])
        ring.ack(slot[1])                        # duplicate: ignored
        ring.ack(12345)                          # unknown: ignored
        assert ring.tail == 64

    def test_acked_traffic_never_degrades_to_segments(self):
        # 50 x 512-byte messages through a 4 KiB ring only stay on the
        # ring if acked slots are actually reclaimed (PR 2's ring, with
        # no wrap-around, fell back to dedicated segments after 8).
        transport = SharedMemoryTransport(min_bytes=16, ring_bytes=4096)
        ring_name = "testring-acked"
        receipts = []
        try:
            for i in range(50):
                record = transport.encode(np.full(64, i, dtype=np.int64),
                                          ring=ring_name)
                assert record[0] == SHMRING, (i, record[0])
                view = transport.decode(record, ack=receipts.append)
                assert np.array_equal(view, np.full(64, i))
                del view
                gc.collect()
                while receipts:
                    transport.ring_ack(receipts.pop())
        finally:
            transport.retire_rings([ring_name])

    def test_unacked_traffic_falls_back_to_segments(self):
        transport = SharedMemoryTransport(min_bytes=16, ring_bytes=4096)
        ring_name = "testring-unacked"
        kinds = []
        try:
            for i in range(50):
                record = transport.encode(np.full(64, i, dtype=np.int64),
                                          ring=ring_name)
                kinds.append(record[0])
                transport.dispose(record)
        finally:
            transport.retire_rings([ring_name])
        assert kinds[0] == SHMRING
        assert SHMSEG in kinds  # ring exhausted without acks: graceful fallback

    def test_ack_fires_only_after_last_view_dies(self):
        transport = SharedMemoryTransport(min_bytes=16, ring_bytes=4096)
        ring_name = "testring-lastview"
        receipts = []
        try:
            payload = {"a": np.arange(64, dtype=np.int64),
                       "b": np.arange(32, dtype=np.float64)}
            record = transport.encode(payload, ring=ring_name)
            assert record[0] == SHMRING
            out = transport.decode(record, ack=receipts.append)
            del out["a"]
            gc.collect()
            assert receipts == []  # "b" still alive: slot not released
            del out
            gc.collect()
            assert len(receipts) == 1
            transport.ring_ack(receipts[0])
        finally:
            transport.retire_rings([ring_name])

    def test_fabric_routes_acks_between_ranks(self):
        # Single-process fabric: rank 0 sends to rank 1, rank 1's views
        # die, and the ack record parked in rank 0's inbox is applied the
        # next time rank 0 reads its inbox.
        transport = SharedMemoryTransport(min_bytes=16, ring_bytes=4096)
        fabric = ProcessFabric(2, timeout=scale_timeout(5.0),
                               transport=transport)
        try:
            from repro.pro.backends.sharedmem import _SENDER_RINGS

            fabric.put(0, 1, "bulk", np.arange(512, dtype=np.int64))
            view = fabric.get(0, 1, "bulk", [])
            assert np.array_equal(view, np.arange(512))
            ring = _SENDER_RINGS[(os.getpid(), fabric._ring_names[0])]
            assert ring.tail == 0
            del view
            gc.collect()                    # ack lands in rank 0's inbox
            fabric.put(1, 0, "reply", "pong")
            assert fabric.get(1, 0, "reply", []) == "pong"
            assert ring.tail > 0            # ...and was applied on the read
        finally:
            fabric.shutdown()

    def test_pickle_transport_ignores_ack_machinery(self):
        transport = PickleTransport()
        record = transport.encode(np.arange(10))
        assert np.array_equal(transport.decode(record, ack=lambda r: None),
                              np.arange(10))
        transport.ring_ack(("whatever", 0))  # must not raise


class TestMultiConsumerSegments:
    """encode_shared: one refcounted segment serves n independent receivers."""

    def _transport(self):
        return SharedMemoryTransport(min_bytes=16)

    def test_every_consumer_decodes_the_same_payload(self):
        transport = self._transport()
        payload = {"big": np.arange(512, dtype=np.int64), "tag": "x"}
        record = transport.encode_shared(payload, 3)
        from repro.pro.backends.transport import SHMMULTI

        assert record[0] == SHMMULTI
        for _ in range(3):
            out = transport.decode(record)
            assert np.array_equal(out["big"], payload["big"])
            assert out["tag"] == "x"
        transport.retire_shared()

    def test_unlinked_after_last_consumer_ack(self):
        transport = self._transport()
        before = shm_segments()
        record = transport.encode_shared(np.arange(512, dtype=np.int64), 2)
        name = record[1]
        assert name in shm_segments() - before
        receipts = []
        out1 = transport.decode(record, ack=receipts.append)
        assert len(receipts) == 1  # ack fires at attach time
        transport.ring_ack(receipts.pop())
        assert name in shm_segments()  # one consumer left: still linked
        out2 = transport.decode(record, ack=receipts.append)
        transport.ring_ack(receipts.pop())
        assert name not in shm_segments()  # last ack unlinked the name
        # mappings outlive the unlink: the views stay readable
        assert np.array_equal(out1, np.arange(512))
        assert np.array_equal(out2, np.arange(512))
        del out1, out2
        gc.collect()

    def test_dispose_releases_each_undelivered_copy(self):
        transport = self._transport()
        record = transport.encode_shared(np.arange(512, dtype=np.int64), 2)
        name = record[1]
        transport.dispose(record)
        assert name in shm_segments()   # one copy still undelivered
        transport.dispose(record)
        assert name not in shm_segments()

    def test_retire_shared_reaps_abandoned_segments(self):
        transport = self._transport()
        record = transport.encode_shared(np.arange(512, dtype=np.int64), 4)
        name = record[1]
        assert name in shm_segments()
        transport.retire_shared()
        assert name not in shm_segments()
        transport.ring_ack((name, "multi"))  # late ack: ignored, no raise

    def test_small_payloads_stay_inband_and_reusable(self):
        transport = self._transport()
        record = transport.encode_shared((1, "two", np.arange(1)), 5)
        from repro.pro.backends.transport import SHMMULTI

        assert record[0] != SHMMULTI  # nothing bulk: plain in-band record
        for _ in range(5):
            assert transport.decode(record)[1] == "two"

    def test_pickle_transport_encode_shared_is_inband(self):
        transport = PickleTransport()
        record = transport.encode_shared(np.arange(100), 3)
        for _ in range(3):
            assert np.array_equal(transport.decode(record), np.arange(100))
        assert transport.stats.shared_encode_calls == 1

    def test_n_consumers_validated(self):
        with pytest.raises(ValidationError):
            self._transport().encode_shared(np.arange(10), 0)


class TestAdaptiveRing:
    """Adaptive logical ring capacity: grow on pressure, shrink when quiet."""

    class _FakeShm:
        def __init__(self, size):
            self.size = size
            self.buf = memoryview(bytearray(size))

    def test_grows_after_an_epoch_with_fallbacks(self):
        ring = _SenderRing(self._FakeShm(4096), capacity=512, min_capacity=128)
        assert ring.capacity == 512
        assert ring.allocate(1024) is None       # does not fit: fallback
        assert ring.epoch_fallbacks == 1
        ring.end_epoch()
        assert ring.capacity == 1024             # doubled until demand fits
        slot = ring.allocate(1024)
        assert slot is not None
        ring.ack(slot[1])

    def test_growth_clamped_to_physical_segment(self):
        ring = _SenderRing(self._FakeShm(4096), capacity=1024, min_capacity=128)
        assert ring.allocate(1_000_000) is None
        ring.end_epoch()
        assert ring.capacity == 4096             # the physical ceiling
        assert ring.allocate(1_000_000) is None  # still too big: true oversize

    def test_no_resize_while_slots_outstanding(self):
        ring = _SenderRing(self._FakeShm(4096), capacity=512, min_capacity=128)
        slot = ring.allocate(256)                # never acked
        assert ring.allocate(512) is None        # pressure...
        ring.end_epoch()
        assert ring.capacity == 512              # ...but geometry is pinned
        ring.ack(slot[1])
        ring.end_epoch()                         # stats carried forward
        assert ring.capacity == 1024

    def test_shrinks_after_sustained_quiet_epochs(self):
        ring = _SenderRing(self._FakeShm(4096), capacity=2048, min_capacity=256)
        for _ in range(3):                       # patience = 3 quiet epochs
            slot = ring.allocate(64)             # peak well under capacity/4
            ring.ack(slot[1])
            ring.end_epoch()
        assert ring.capacity == 1024
        for _ in range(6):                       # keeps shrinking to the floor
            slot = ring.allocate(64)
            ring.ack(slot[1])
            ring.end_epoch()
        assert ring.capacity == 256
        ring.end_epoch()
        assert ring.capacity == 256              # floored at min_capacity

    def test_busy_epoch_resets_shrink_patience(self):
        ring = _SenderRing(self._FakeShm(4096), capacity=2048, min_capacity=256)
        for _ in range(2):
            slot = ring.allocate(64)
            ring.ack(slot[1])
            ring.end_epoch()
        slot = ring.allocate(1024)               # busy epoch: patience resets
        ring.ack(slot[1])
        ring.end_epoch()
        slot = ring.allocate(64)
        ring.ack(slot[1])
        ring.end_epoch()
        assert ring.capacity == 2048

    def test_resize_restarts_virtual_space_and_ignores_stale_receipts(self):
        ring = _SenderRing(self._FakeShm(4096), capacity=512, min_capacity=128)
        slot = ring.allocate(256)
        ring.ack(slot[1])
        assert ring.allocate(1024) is None
        ring.end_epoch()
        assert (ring.head, ring.tail) == (0, 0)
        ring.ack(slot[1])                        # stale pre-resize receipt
        assert (ring.head, ring.tail) == (0, 0)

    def test_transport_ring_epoch_grows_and_stops_fallbacks(self):
        transport = SharedMemoryTransport(min_bytes=16, ring_bytes=1024,
                                          ring_max_bytes=64 * 1024)
        ring_name = "testring-adaptive"
        receipts = []
        try:
            payload = np.arange(512, dtype=np.int64)  # 4 KiB > 1 KiB ring
            record = transport.encode(payload, ring=ring_name)
            assert record[0] == SHMSEG               # oversize fallback
            assert transport.stats.oversize_fallbacks == 1
            transport.dispose(record)
            transport.ring_epoch(ring_name)          # epoch boundary: grow
            record = transport.encode(payload, ring=ring_name)
            assert record[0] == SHMRING              # the ring now fits it
            out = transport.decode(record, ack=receipts.append)
            assert np.array_equal(out, payload)
            del out
            gc.collect()
            while receipts:
                transport.ring_ack(receipts.pop())
            assert transport.stats.oversize_fallbacks == 1  # no new fallbacks
        finally:
            transport.retire_rings([ring_name])

    def test_adaptive_ring_disabled_keeps_geometry(self):
        transport = SharedMemoryTransport(min_bytes=16, ring_bytes=1024,
                                          adaptive_ring=False)
        assert transport.ring_max_bytes == 1024
        ring_name = "testring-pinned"
        try:
            payload = np.arange(512, dtype=np.int64)
            record = transport.encode(payload, ring=ring_name)
            assert record[0] == SHMSEG
            transport.dispose(record)
            transport.ring_epoch(ring_name)          # no-op when disabled
            record = transport.encode(payload, ring=ring_name)
            assert record[0] == SHMSEG               # still falls back
            transport.dispose(record)
        finally:
            transport.retire_rings([ring_name])

    def test_ring_geometry_validated(self):
        with pytest.raises(ValidationError):
            SharedMemoryTransport(ring_bytes=4096, ring_max_bytes=1024)
