"""Unit tests for the exact communication-matrix law (Section 3)."""

import numpy as np
import pytest

from repro.core import commmatrix as cm
from repro.core import hypergeometric as hg
from repro.core import matrix_distribution as md
from repro.util.errors import ValidationError


class TestCountingAndPmf:
    def test_two_by_two_counts(self):
        # m = (1, 1), m' = (1, 1): two permutations, each matrix realised once.
        identity_like = np.array([[1, 0], [0, 1]])
        swap = np.array([[0, 1], [1, 0]])
        assert md.pmf(identity_like, [1, 1], [1, 1]) == pytest.approx(0.5)
        assert md.pmf(swap, [1, 1], [1, 1]) == pytest.approx(0.5)

    def test_number_of_realizing_permutations(self):
        # m = (2,), m' = (2,): the only matrix [[2]] is realised by both permutations.
        log_count = md.log_number_of_realizing_permutations([[2]], [2], [2])
        assert np.exp(log_count) == pytest.approx(2.0)

    def test_pmf_sums_to_one_small_cases(self):
        for rows, cols in [([3, 2], [2, 3]), ([2, 2, 2], [3, 3]), ([4], [1, 3]), ([1, 1, 1], [1, 1, 1])]:
            dist = md.exact_distribution(rows, cols)
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_pmf_rejects_invalid_matrix(self):
        with pytest.raises(ValidationError):
            md.pmf([[1, 1], [1, 1]], [3, 1], [2, 2])

    def test_expected_matrix(self):
        expected = md.expected_matrix([6, 4], [5, 5])
        assert np.allclose(expected, [[3, 3], [2, 2]])

    def test_expected_matrix_zero_total(self):
        assert np.allclose(md.expected_matrix([0, 0], [0, 0]), 0.0)

    def test_exact_distribution_keys_rebuild(self):
        rows, cols = [2, 1], [1, 2]
        dist = md.exact_distribution(rows, cols)
        for key in dist:
            matrix = np.frombuffer(key, dtype=np.int64).reshape(2, 2)
            assert cm.is_valid_communication_matrix(matrix, rows, cols)


class TestEnumeration:
    def test_enumerates_all_contingency_tables(self):
        # Marginals (2,1) x (1,2): matrices are [[0,2],[1,0]], [[1,1],[0,1]] -- and [[?]] count known to be 2?
        matrices = list(md.enumerate_matrices([2, 1], [1, 2]))
        as_tuples = {tuple(m.ravel().tolist()) for m in matrices}
        assert as_tuples == {(0, 2, 1, 0), (1, 1, 0, 1)}

    def test_count_matches_known_formula(self):
        # For marginals (1,1,1) x (1,1,1) the admissible matrices are the 3x3
        # permutation matrices: exactly 6.
        matrices = list(md.enumerate_matrices([1, 1, 1], [1, 1, 1]))
        assert len(matrices) == 6

    def test_max_matrices_guard(self):
        with pytest.raises(ValidationError):
            list(md.enumerate_matrices([10, 10, 10], [10, 10, 10], max_matrices=5))

    def test_every_enumerated_matrix_is_valid(self):
        rows, cols = [3, 1, 2], [2, 2, 2]
        for matrix in md.enumerate_matrices(rows, cols):
            assert cm.is_valid_communication_matrix(matrix, rows, cols)

    def test_enumeration_with_zero_rows(self):
        matrices = list(md.enumerate_matrices([0, 3], [1, 2]))
        for m in matrices:
            assert m[0].sum() == 0


class TestMarginals:
    def test_entry_distribution_parameters(self):
        # Proposition 3: a_ij ~ h(m'_j, m_i, n - m_i)
        t, w, b = md.entry_distribution(1, 0, [4, 6], [7, 3])
        assert (t, w, b) == (7, 6, 4)

    def test_entry_distribution_bounds_checked(self):
        with pytest.raises(ValidationError):
            md.entry_distribution(2, 0, [4, 6], [7, 3])
        with pytest.raises(ValidationError):
            md.entry_distribution(0, 5, [4, 6], [7, 3])

    def test_marginal_consistent_with_exact_law(self):
        # Sum the exact joint law over matrices and compare the induced
        # marginal of a_00 with the hypergeometric of Proposition 3.
        rows, cols = [3, 2], [2, 3]
        dist = md.exact_distribution(rows, cols)
        marginal = {}
        for key, prob in dist.items():
            matrix = np.frombuffer(key, dtype=np.int64).reshape(2, 2)
            marginal[int(matrix[0, 0])] = marginal.get(int(matrix[0, 0]), 0.0) + prob
        t, w, b = md.entry_distribution(0, 0, rows, cols)
        for value, prob in marginal.items():
            assert prob == pytest.approx(hg.pmf(value, t, w, b), abs=1e-12)

    def test_entry_marginal_pmf_helper(self):
        value = md.entry_marginal_pmf(0, 0, [3, 2], [2, 3], 1)
        assert 0.0 < value < 1.0


class TestMergeBlocks:
    def test_basic_merge(self):
        matrix = np.arange(1, 10).reshape(3, 3)
        merged = md.merge_blocks(matrix, [[0, 1], [2]], [[0], [1, 2]])
        assert merged.tolist() == [[1 + 4, 2 + 3 + 5 + 6], [7, 8 + 9]]

    def test_merge_requires_partition(self):
        with pytest.raises(ValidationError):
            md.merge_blocks(np.eye(3, dtype=int), [[0, 1]], [[0], [1], [2]])
        with pytest.raises(ValidationError):
            md.merge_blocks(np.eye(3, dtype=int), [[0, 1], [1, 2]], [[0], [1], [2]])

    def test_merge_requires_2d(self):
        with pytest.raises(ValidationError):
            md.merge_blocks(np.arange(3), [[0]], [[0, 1, 2]])

    def test_full_merge_gives_total(self):
        matrix = cm.sample_matrix([4, 5], [3, 6], np.random.default_rng(0))
        merged = md.merge_blocks(matrix, [[0, 1]], [[0, 1]])
        assert merged.tolist() == [[9]]

    def test_merge_preserves_marginal_structure(self):
        rows, cols = [2, 3, 1], [2, 2, 2]
        matrix = cm.sample_matrix(rows, cols, np.random.default_rng(1))
        merged = md.merge_blocks(matrix, [[0, 1], [2]], [[0], [1, 2]])
        assert merged.sum() == 6
        assert merged.sum(axis=1).tolist() == [5, 1]
        assert merged.sum(axis=0).tolist() == [2, 4]
