"""Unit tests for the statistical validation subpackage."""

import numpy as np
import pytest

from repro.core import commmatrix as cm
from repro.core import hypergeometric as hg
from repro.core import multivariate as mv
from repro.stats.hypergeom_tests import (
    chi_square_hypergeometric,
    chi_square_multivariate_marginals,
    merge_small_cells,
)
from repro.stats.matrix_tests import (
    chi_square_matrix_law,
    entry_marginal_test,
    merged_matrix_test,
)
from repro.stats.uniformity import (
    chi_square_permutation_uniformity,
    fixed_points_summary,
    inversions_summary,
    position_occupancy_test,
)
from repro.util.errors import ValidationError


def numpy_permutation_sampler(n, seed=0):
    rng = np.random.default_rng(seed)
    return lambda: rng.permutation(n)


def biased_sampler(n, seed=0):
    """A visibly non-uniform sampler: identity 50% of the time."""
    rng = np.random.default_rng(seed)

    def sampler():
        if rng.random() < 0.5:
            return np.arange(n)
        return rng.permutation(n)

    return sampler


class TestMergeSmallCells:
    def test_merges_until_threshold(self):
        observed = np.array([1.0, 1, 1, 1, 20, 20])
        expected = np.array([1.0, 1, 1, 1, 20, 20])
        obs, exp = merge_small_cells(observed, expected, min_expected=5)
        assert exp.min() >= 5
        assert obs.sum() == observed.sum()

    def test_trailing_small_cell_merged_left(self):
        observed = np.array([10.0, 10, 1])
        expected = np.array([10.0, 10, 1])
        obs, exp = merge_small_cells(observed, expected, min_expected=5)
        assert len(obs) == 2
        assert exp[-1] == 11

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            merge_small_cells(np.ones(3), np.ones(4))

    def test_too_little_mass(self):
        with pytest.raises(ValidationError):
            merge_small_cells(np.array([1.0]), np.array([1.0]))


class TestChiSquareHypergeometric:
    def test_correct_sampler_passes(self):
        rng = np.random.default_rng(5)
        samples = hg.sample_many(20, 30, 25, 2000, rng)
        result = chi_square_hypergeometric(samples, 20, 30, 25)
        assert result.p_value > 1e-4
        assert not result.rejects_uniformity()

    def test_wrong_distribution_fails(self):
        rng = np.random.default_rng(6)
        # Samples from a *different* parameter set should be rejected.
        samples = hg.sample_many(20, 45, 10, 2000, rng)
        result = chi_square_hypergeometric(samples, 20, 30, 25)
        assert result.p_value < 1e-6

    def test_out_of_support_rejected(self):
        with pytest.raises(ValidationError):
            chi_square_hypergeometric(np.array([100]), 5, 10, 10)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValidationError):
            chi_square_hypergeometric(np.array([]), 5, 10, 10)


class TestMultivariateMarginals:
    def test_correct_sampler_passes(self):
        rng = np.random.default_rng(7)
        class_sizes = [8, 12, 10]
        samples = np.array([mv.sample_sequential(9, class_sizes, rng) for _ in range(1500)])
        results = chi_square_multivariate_marginals(samples, 9, class_sizes)
        assert len(results) == 3
        assert all(r.p_value > 1e-4 for r in results)

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            chi_square_multivariate_marginals(np.zeros((10, 2), dtype=int), 3, [2, 2, 2])


class TestPermutationUniformity:
    def test_numpy_shuffle_passes_exhaustive(self):
        result = chi_square_permutation_uniformity(numpy_permutation_sampler(4, seed=1), 4, 3000)
        assert result.p_value > 1e-4

    def test_biased_sampler_fails_exhaustive(self):
        result = chi_square_permutation_uniformity(biased_sampler(4, seed=2), 4, 3000)
        assert result.p_value < 1e-6

    def test_exhaustive_rejects_large_n(self):
        with pytest.raises(ValidationError):
            chi_square_permutation_uniformity(numpy_permutation_sampler(12), 12, 10)

    def test_sampler_must_return_permutations(self):
        with pytest.raises(ValidationError):
            chi_square_permutation_uniformity(lambda: np.array([0, 0, 1]), 3, 5)

    def test_sampler_size_checked(self):
        with pytest.raises(ValidationError):
            chi_square_permutation_uniformity(numpy_permutation_sampler(5), 4, 5)

    def test_occupancy_numpy_passes(self):
        result = position_occupancy_test(numpy_permutation_sampler(8, seed=3), 8, 2000)
        assert result.p_value > 1e-4

    def test_occupancy_biased_fails(self):
        result = position_occupancy_test(biased_sampler(8, seed=4), 8, 2000)
        assert result.p_value < 1e-6

    def test_fixed_points_mean_one(self):
        summary = fixed_points_summary(numpy_permutation_sampler(30, seed=5), 30, 2000)
        assert abs(summary.z_score) < 5
        assert summary.expected_mean == 1.0
        assert summary.p_value > 1e-5

    def test_fixed_points_identity_heavy_fails(self):
        summary = fixed_points_summary(biased_sampler(30, seed=6), 30, 500)
        assert abs(summary.z_score) > 10

    def test_inversions_mean(self):
        summary = inversions_summary(numpy_permutation_sampler(20, seed=7), 20, 1500)
        assert summary.expected_mean == pytest.approx(20 * 19 / 4)
        assert abs(summary.z_score) < 5

    def test_inversions_biased_fails(self):
        summary = inversions_summary(biased_sampler(20, seed=8), 20, 500)
        assert abs(summary.z_score) > 10


class TestMatrixLaw:
    ROWS, COLS = [3, 2], [2, 3]

    def test_correct_sampler_passes(self):
        rng = np.random.default_rng(9)
        result = chi_square_matrix_law(
            lambda: cm.sample_matrix(self.ROWS, self.COLS, rng), self.ROWS, self.COLS, 4000
        )
        assert result.p_value > 1e-4

    def test_wrong_sampler_fails(self):
        rng = np.random.default_rng(10)

        def bad_sampler():
            # Always route as much as possible down the diagonal -- valid
            # marginals, wrong distribution.
            return np.array([[2, 1], [0, 2]])

        result = chi_square_matrix_law(bad_sampler, self.ROWS, self.COLS, 500)
        assert result.p_value < 1e-6

    def test_invalid_matrix_detected(self):
        def invalid_sampler():
            return np.array([[3, 0], [0, 2]])
        with pytest.raises(ValidationError):
            chi_square_matrix_law(invalid_sampler, self.ROWS, self.COLS, 10)

    def test_entry_marginal_test_passes(self):
        rng = np.random.default_rng(11)
        rows, cols = [6, 8, 4], [5, 5, 8]
        matrices = [cm.sample_matrix(rows, cols, rng) for _ in range(1500)]
        result = entry_marginal_test(matrices, 1, 2, rows, cols)
        assert result.p_value > 1e-4

    def test_entry_marginal_test_needs_matrices(self):
        with pytest.raises(ValidationError):
            entry_marginal_test([], 0, 0, [2], [2])

    def test_merged_matrix_test_passes(self):
        rng = np.random.default_rng(12)
        rows, cols = [4, 4, 4, 4], [4, 4, 4, 4]
        matrices = [cm.sample_matrix(rows, cols, rng) for _ in range(1500)]
        result = merged_matrix_test(
            matrices, [[0, 1], [2, 3]], [[0, 1], [2, 3]], rows, cols
        )
        assert result.p_value > 1e-4
