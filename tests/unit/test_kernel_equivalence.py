"""Bit-exactness of the compiled kernel tier against the NumPy paths.

The compiled tier consumes raw ``uint64`` words from the same bit generator
the NumPy code would have used, so for a fixed seed the two tiers must agree
*bit for bit* -- on every result array and on the generator state afterwards
(so the tiers can interleave within one run).  These tests exercise the
portable kernel bodies directly through :class:`NumbaKernels`; without numba
installed the bodies run as plain Python (``@jit`` is the identity), which
pins the exact same arithmetic the JIT compiles.  The ``requires_numba``
cases additionally prove the *compiled* code agrees on hosts that have it.
"""

import numpy as np
import pytest

from repro.core import hypergeometric as hg
from repro.core.engine import SamplerEngine
from repro.core.kernels import portable, wordstream
from repro.core.kernels.numba_tier import NumbaKernels, build
from repro.core.permutation import local_shuffle, random_permutation_indices
from repro.rng.counting import CountingRNG

requires_numba = pytest.mark.skipif(
    not portable.HAVE_NUMBA, reason="numba is not installed"
)


@pytest.fixture(scope="module")
def tier():
    """A warmed-up tier (self-verified bit-exact on construction)."""
    return NumbaKernels().warm_up()


def _pair(seed):
    return np.random.default_rng(seed), np.random.default_rng(seed)


class TestSelfVerification:
    def test_warm_up_proves_equivalence(self):
        kernels = NumbaKernels().warm_up()
        assert kernels.warmup_seconds >= 0.0

    @requires_numba
    def test_build_compiles_and_verifies(self):
        assert build().name == "numba"


class TestPermutationEquivalence:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 13, 64, 257, 1000])
    def test_matches_generator_shuffle(self, tier, n):
        g1, g2 = _pair(100 + n)
        perm = tier.permutation(g1, n)
        ref = np.arange(n)
        g2.shuffle(ref)
        assert np.array_equal(perm, ref)
        assert np.array_equal(g1.random(4), g2.random(4))

    def test_local_shuffle_cross_tier(self, tier):
        g1, g2 = _pair(9)
        a = local_shuffle(np.arange(500) * 2, g1, kernels=tier)
        b = local_shuffle(np.arange(500) * 2, g2, kernels="numpy")
        assert np.array_equal(a, b)
        assert np.array_equal(g1.random(4), g2.random(4))

    def test_counting_rng_parity(self, tier):
        c1 = CountingRNG(np.random.default_rng(4))
        c2 = CountingRNG(np.random.default_rng(4))
        a = local_shuffle(np.arange(200), c1, kernels=tier)
        b = local_shuffle(np.arange(200), c2, kernels="numpy")
        assert np.array_equal(a, b)
        assert (c1.integers_drawn, c1.calls) == (c2.integers_drawn, c2.calls)

    def test_back_to_back_draws_interleave(self, tier):
        """Tier and NumPy calls on one generator stay on one stream."""
        g1, g2 = _pair(77)
        first = tier.permutation(g1, 51)
        ref_first = np.arange(51)
        g2.shuffle(ref_first)
        second = g1.random(3)
        ref_second = g2.random(3)
        third = tier.permutation(g1, 17)
        ref_third = np.arange(17)
        g2.shuffle(ref_third)
        assert np.array_equal(first, ref_first)
        assert np.array_equal(second, ref_second)
        assert np.array_equal(third, ref_third)


class TestRepeatHypergeometricEquivalence:
    GRID = [
        (30, 40, 20),    # HRUA region
        (500, 300, 11),  # inversion region (small sample)
        (8, 9, 4),       # tiny urn, inversion
        (60, 60, 110),   # sample close to the whole urn (HRUA, untransformed)
        (1000, 3, 500),  # min(w, b) tiny
    ]

    @pytest.mark.parametrize("w,b,t", GRID)
    def test_matches_generator_hypergeometric(self, tier, w, b, t):
        g1, g2 = _pair(1000 + t)
        mine = tier.repeat_hypergeometric(g1, w, b, t, 64)
        ref = g2.hypergeometric(w, b, t, 64)
        assert np.array_equal(mine, ref)
        assert np.array_equal(g1.random(4), g2.random(4))

    def test_engine_draw_many_cross_tier(self, tier):
        e_np = SamplerEngine("numpy", kernels="numpy")
        e_k = SamplerEngine("numpy", kernels=tier)
        for seed in (0, 1, 2):
            g1, g2 = _pair(seed)
            a = e_k.draw_many(500, 300, 400, 64, g1)
            b = e_np.draw_many(500, 300, 400, 64, g2)
            assert np.array_equal(a, b)
            assert np.array_equal(g1.random(4), g2.random(4))

    def test_counting_rng_charged_like_the_vectorized_call(self, tier):
        e_k = SamplerEngine("numpy", kernels=tier)
        e_np = SamplerEngine("numpy", kernels="numpy")
        c1 = CountingRNG(np.random.default_rng(8))
        c2 = CountingRNG(np.random.default_rng(8))
        assert np.array_equal(e_k.draw_many(50, 60, 70, 32, c1),
                              e_np.draw_many(50, 60, 70, 32, c2))
        assert (c1.uniforms_drawn, c1.calls) == (c2.uniforms_drawn, c2.calls)


class TestBlockedScalarEquivalence:
    """The pre-drawn-uniform HIN/HRUA blocks vs the library's scalar loops."""

    @pytest.mark.parametrize("concrete,t,w,b", [
        ("hin", 5, 20, 30),
        ("hin", 12, 7, 40),
        ("hin", 3, 100, 2),
        ("hrua", 40, 60, 50),
        ("hrua", 200, 150, 170),
        ("hrua", 90, 45, 50),
    ])
    def test_matches_per_draw_loop(self, concrete, t, w, b):
        g1, g2 = _pair(3000 + t)
        scalar = hg.sample_hin if concrete == "hin" else hg.sample_hrua
        mine, used = wordstream.blocked_scalar_many(g1, concrete, t, w, b, 50)
        ref = np.array([scalar(t, w, b, g2) for _ in range(50)], dtype=np.int64)
        assert np.array_equal(mine, ref)
        assert np.array_equal(g1.random(4), g2.random(4))
        assert used.min() >= 1

    def test_hin_uniform_counts_match_counting_rng(self):
        g1 = np.random.default_rng(5)
        c2 = CountingRNG(np.random.default_rng(5))
        _, used = wordstream.blocked_scalar_many(g1, "hin", 9, 25, 30, 20)
        per_call = []
        for _ in range(20):
            before = c2.uniforms_drawn
            hg.sample_hin(9, 25, 30, c2)
            per_call.append(c2.uniforms_drawn - before)
        assert used.tolist() == per_call


class TestTreeKernelEquivalence:
    """Splitting-tree kernels vs the NumPy-tier engine, level order and all."""

    def test_multivariate_batch(self, tier):
        oracle = SamplerEngine("auto", kernels="numpy")
        cases = [
            ([14, 6], [[5, 0, 7, 3, 11], [2, 2, 2, 2, 2]]),
            ([1], [[1]]),
            ([0, 10], [[0, 4], [5, 5]]),
            ([200], [[50, 60, 40, 80]]),
        ]
        for seed, (draws, sizes) in enumerate(cases):
            g1, g2 = _pair(4000 + seed)
            draws = np.asarray(draws, dtype=np.int64)
            sizes = np.asarray(sizes, dtype=np.int64)
            mine = tier.multivariate_batch(g1, draws, sizes)
            ref = oracle.multivariate_batch(draws, sizes, g2)
            assert np.array_equal(mine, ref), (draws, sizes)
            assert np.array_equal(g1.random(4), g2.random(4))

    def test_sample_matrix(self, tier):
        oracle = SamplerEngine("auto", kernels="numpy")
        cases = [
            ([7, 5, 3, 9, 0, 12], [6, 6, 6, 6, 6, 6]),
            ([12], [5, 7]),
            ([3, 3], [6]),
            ([40, 30, 20, 10], [25, 25, 25, 25]),
        ]
        for seed, (rows, cols) in enumerate(cases):
            g1, g2 = _pair(5000 + seed)
            mine = tier.sample_matrix(g1, rows, cols)
            ref = oracle.sample_matrix_batched(rows, cols, g2)
            assert np.array_equal(mine, ref), (rows, cols)
            assert np.array_equal(g1.random(4), g2.random(4))

    def test_counting_rng_parity_through_the_engine(self, tier):
        e_k = SamplerEngine("auto", kernels=tier)
        e_np = SamplerEngine("auto", kernels="numpy")
        c1 = CountingRNG(np.random.default_rng(9))
        c2 = CountingRNG(np.random.default_rng(9))
        a = e_k.sample_matrix_batched([70, 50, 30], [60, 40, 50], c1)
        b = e_np.sample_matrix_batched([70, 50, 30], [60, 40, 50], c2)
        assert np.array_equal(a, b)
        assert (c1.uniforms_drawn, c1.integers_drawn, c1.calls) == \
               (c2.uniforms_drawn, c2.integers_drawn, c2.calls)


class TestPipelineEquivalence:
    """Whole-driver cross-tier agreement: the user-visible contract."""

    def test_permutation_pipeline(self, tier):
        a = random_permutation_indices(400, 3, seed=11, kernels="numpy")
        b = random_permutation_indices(400, 3, seed=11, kernels=tier)
        assert np.array_equal(a, b)

    def test_matrix_pipeline(self, tier):
        from repro.core.api import sample_communication_matrix

        a = sample_communication_matrix([9, 9, 9], seed=3, algorithm="batched",
                                        kernels="numpy")
        b = sample_communication_matrix([9, 9, 9], seed=3, algorithm="batched",
                                        kernels=tier)
        assert np.array_equal(a, b)

    def test_unsupported_generator_degrades_per_call(self, tier):
        """MT19937 makes the tier decline; results match numpy's own path."""
        g1 = np.random.Generator(np.random.MT19937(6))
        g2 = np.random.Generator(np.random.MT19937(6))
        a = local_shuffle(np.arange(100), g1, kernels=tier)
        out = np.arange(100)
        g2.shuffle(out)
        assert np.array_equal(a, out)
