"""Unit tests for BlockDistribution."""

import numpy as np
import pytest

from repro.core.blocks import BlockDistribution
from repro.util.errors import ValidationError


class TestConstruction:
    def test_from_sizes(self):
        dist = BlockDistribution([3, 0, 2])
        assert dist.n_blocks == 3
        assert dist.total == 5
        assert dist.offsets.tolist() == [0, 3, 3, 5]

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            BlockDistribution([])

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValidationError):
            BlockDistribution([3, -1])

    def test_balanced_remainder_goes_first(self):
        dist = BlockDistribution.balanced(10, 3)
        assert dist.sizes.tolist() == [4, 3, 3]

    def test_balanced_exact_division(self):
        assert BlockDistribution.balanced(12, 4).sizes.tolist() == [3, 3, 3, 3]

    def test_balanced_zero_items(self):
        dist = BlockDistribution.balanced(0, 3)
        assert dist.total == 0
        assert dist.sizes.tolist() == [0, 0, 0]

    def test_uniform(self):
        dist = BlockDistribution.uniform(5, 4)
        assert dist.sizes.tolist() == [5, 5, 5, 5]

    def test_random_uneven_totals_match(self):
        dist = BlockDistribution.random_uneven(100, 7, seed=1, min_size=3)
        assert dist.total == 100
        assert dist.sizes.min() >= 3

    def test_random_uneven_reproducible(self):
        a = BlockDistribution.random_uneven(50, 4, seed=9)
        b = BlockDistribution.random_uneven(50, 4, seed=9)
        assert a == b

    def test_random_uneven_infeasible_min(self):
        with pytest.raises(ValidationError):
            BlockDistribution.random_uneven(5, 3, min_size=10)

    def test_from_blocks(self):
        blocks = [np.arange(2), np.arange(5), np.arange(0)]
        dist = BlockDistribution.from_blocks(blocks)
        assert dist.sizes.tolist() == [2, 5, 0]


class TestIndexing:
    dist = BlockDistribution([4, 3, 3])

    def test_owner_of(self):
        assert self.dist.owner_of(0) == 0
        assert self.dist.owner_of(3) == 0
        assert self.dist.owner_of(4) == 1
        assert self.dist.owner_of(9) == 2

    def test_owner_of_out_of_range(self):
        with pytest.raises(ValidationError):
            self.dist.owner_of(10)

    def test_owner_skips_empty_blocks(self):
        dist = BlockDistribution([2, 0, 3])
        assert dist.owner_of(2) == 2

    def test_local_index_roundtrip(self):
        for g in range(self.dist.total):
            block, offset = self.dist.local_index(g)
            assert self.dist.global_index(block, offset) == g

    def test_global_index_validation(self):
        with pytest.raises(ValidationError):
            self.dist.global_index(0, 4)
        with pytest.raises(ValidationError):
            self.dist.global_index(3, 0)

    def test_block_slice(self):
        assert self.dist.block_slice(1) == slice(4, 7)

    def test_slices_cover_everything(self):
        slices = self.dist.slices()
        covered = []
        for s in slices:
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(10))

    def test_is_balanced(self):
        assert BlockDistribution([4, 3, 3]).is_balanced()
        assert not BlockDistribution([5, 1]).is_balanced()
        assert BlockDistribution([5, 1]).is_balanced(tolerance=4)


class TestMaterialisation:
    def test_split_and_concatenate_roundtrip(self):
        dist = BlockDistribution([2, 5, 3])
        data = np.arange(10) * 10
        blocks = dist.split(data)
        assert [len(b) for b in blocks] == [2, 5, 3]
        assert np.array_equal(dist.concatenate(blocks), data)

    def test_split_wrong_length(self):
        with pytest.raises(ValidationError):
            BlockDistribution([2, 2]).split(np.arange(5))

    def test_concatenate_wrong_block_count(self):
        with pytest.raises(ValidationError):
            BlockDistribution([2, 2]).concatenate([np.arange(2)])

    def test_concatenate_wrong_block_size(self):
        with pytest.raises(ValidationError):
            BlockDistribution([2, 2]).concatenate([np.arange(2), np.arange(3)])

    def test_concatenate_empty_total(self):
        dist = BlockDistribution([0, 0])
        assert dist.concatenate([np.empty(0), np.empty(0)]).size == 0

    def test_split_returns_views(self):
        dist = BlockDistribution([3, 2])
        data = np.arange(5)
        blocks = dist.split(data)
        blocks[0][0] = 99
        assert data[0] == 99


class TestDunder:
    def test_equality_and_hash(self):
        a, b = BlockDistribution([1, 2]), BlockDistribution([1, 2])
        c = BlockDistribution([2, 1])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a distribution"

    def test_len(self):
        assert len(BlockDistribution([1, 2, 3])) == 3

    def test_repr_mentions_sizes(self):
        text = repr(BlockDistribution([1, 2, 3]))
        assert "n=6" in text and "p=3" in text
