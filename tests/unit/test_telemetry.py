"""Fleet observability: repatriated telemetry, events, and its determinism.

The contract under test (the telemetry/repatriation sub-contract in
``repro.pro.backends.registry``):

* out-of-address-space ranks snapshot their transport counters and ring
  geometry onto the cost recorder, so the numbers survive the
  worker->parent gap on both the one-shot and the persistent process
  backend;
* in-address-space backends (inline/thread/sim) report the same counter
  keys **zeroed** rather than omitting them;
* lifecycle transitions (pool spawn/heal, retries, degradations) are
  event-sourced and windowed into the run's ``FleetReport``;
* collection is passive -- attaching a recorder never perturbs results
  (the determinism grid at the bottom pins this bit-exactly across
  backend x transport x persistence).
"""

import numpy as np
import pytest

from repro.core.permutation import random_permutation
from repro.pro.machine import PROMachine, resolve_machine
from repro.pro.telemetry import (
    EVENT_KINDS,
    RING_FIELDS,
    TRANSPORT_COUNTERS,
    FleetReport,
    Telemetry,
    event_seq,
    events_since,
    record_event,
    zeroed_transport_stats,
)
from repro.util.errors import ValidationError

#: Large enough that every rank's result block travels through the
#: sharedmem ring (out-of-band) instead of riding the control queue.
N_ITEMS = 50_000
P = 4
SEED = 20030607


def _run_with_telemetry(backend, transport=None, *, persistent=False, runs=1):
    telemetry = Telemetry()
    options = {} if transport is None else {"transport": transport}
    machine = PROMachine(P, seed=SEED, backend=backend,
                         backend_options=options, persistent=persistent,
                         telemetry=telemetry)
    try:
        data = np.arange(N_ITEMS, dtype=np.int64)
        for _ in range(runs):
            out = random_permutation(data, machine=machine)
    finally:
        machine.close()
    return telemetry, out


class TestSchema:
    def test_transport_counters_track_transport_stats_lockstep(self):
        """The schema's counter names ARE TransportStats' slots."""
        from repro.pro.backends.transport import TransportStats

        assert tuple(sorted(TRANSPORT_COUNTERS)) == tuple(
            sorted(TransportStats.__slots__))
        assert sorted(zeroed_transport_stats()) == sorted(TRANSPORT_COUNTERS)
        assert set(zeroed_transport_stats().values()) == {0}

    def test_to_dict_key_stability(self):
        report = FleetReport(backend="thread", n_procs=2)
        payload = report.to_dict()
        assert payload["schema"] == FleetReport.SCHEMA == 1
        assert sorted(payload) == [
            "backend", "events", "n_procs", "parent_transport", "ranks",
            "resilience", "schema", "transport", "wall_clock_seconds",
        ]
        assert sorted(payload["resilience"]) == [
            "degraded_to", "recovery_seconds", "retries"]
        assert sorted(payload["parent_transport"]) == sorted(TRANSPORT_COUNTERS)

    def test_recorder_accumulates_and_clears(self):
        telemetry = Telemetry()
        assert len(telemetry) == 0 and telemetry.last is None
        report = FleetReport(backend="thread", n_procs=1)
        telemetry.record(report)
        assert telemetry.last is report and len(telemetry) == 1
        telemetry.clear()
        assert len(telemetry) == 0 and telemetry.last is None


class TestEventLog:
    def test_record_and_window(self):
        start = event_seq()
        seq = record_event("pool-close", n_procs=3, epoch=7)
        events = events_since(start)
        assert any(e["seq"] == seq and e["kind"] == "pool-close"
                   and e["n_procs"] == 3 for e in events)
        # A window opened after the event excludes it.
        assert all(e["seq"] != seq for e in events_since(event_seq()))

    def test_taxonomy_is_documented(self):
        assert set(EVENT_KINDS) == {
            "pool-spawn", "pool-heal", "pool-poison", "pool-evict",
            "pool-close", "retry", "degraded", "deadline-clamp",
            "explore-start", "explore-divergence", "explore-shrink",
        }


class TestInAddressSpaceBackends:
    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_zeroed_transport_sections_not_omitted(self, backend):
        telemetry, _ = _run_with_telemetry(backend)
        payload = telemetry.last.to_dict()
        assert payload["backend"] == backend
        assert payload["transport"] == "in-process"
        assert len(payload["ranks"]) == P
        for rank_record in payload["ranks"]:
            assert rank_record["transport"] == zeroed_transport_stats()
            assert rank_record["ring"] is None
            assert rank_record["kernel_tier"] is not None
        assert payload["parent_transport"] == zeroed_transport_stats()

    def test_kernel_tier_lines_render_in_summary(self):
        telemetry, _ = _run_with_telemetry("thread")
        text = telemetry.last.summary()
        assert "kernel tier" in text
        assert "resilience: no retries" in text


@pytest.mark.subprocess
class TestProcessRepatriation:
    def test_one_shot_sharedmem_counters_and_ring_survive(self):
        telemetry, _ = _run_with_telemetry("process", "sharedmem")
        payload = telemetry.last.to_dict()
        assert payload["transport"] == "sharedmem"
        rings = 0
        for rank_record in payload["ranks"]:
            stats = rank_record["transport"]
            assert sorted(stats) == sorted(TRANSPORT_COUNTERS)
            assert stats["encode_calls"] > 0
            assert stats["ring_messages"] > 0  # ring-ack traffic crossed over
            assert stats["bytes_encoded"] > 0
            if rank_record["ring"] is not None:
                rings += 1
                assert sorted(rank_record["ring"]) == sorted(RING_FIELDS)
                assert rank_record["ring"]["capacity"] > 0
        assert rings == P  # every sender repatriated its ring geometry

    def test_one_shot_pickle_counters_without_rings(self):
        telemetry, _ = _run_with_telemetry("process", "pickle")
        payload = telemetry.last.to_dict()
        for rank_record in payload["ranks"]:
            assert rank_record["transport"]["encode_calls"] > 0
            assert rank_record["ring"] is None

    def test_persistent_pool_counters_accumulate_and_encode_once(self):
        telemetry, _ = _run_with_telemetry("process", "sharedmem",
                                           persistent=True, runs=3)
        assert len(telemetry) == 3
        first, last = telemetry.reports[0].to_dict(), telemetry.last.to_dict()
        # Standing workers carry running totals: later >= earlier.
        for early, late in zip(first["ranks"], last["ranks"]):
            assert late["transport"]["encode_calls"] >= \
                early["transport"]["encode_calls"]
            assert late["transport"]["oversize_fallbacks"] >= 0
        # Encode-once-per-run: k runs => exactly k parent shared encodes.
        assert last["parent_transport"]["shared_encode_calls"] == 3
        # The fleet spawned during run 1's window, not run 3's.
        assert "pool-spawn" in [e["kind"] for e in first["events"]]
        assert "pool-spawn" not in [e["kind"] for e in last["events"]]


@pytest.mark.subprocess
class TestRecoveryEvents:
    def test_heal_and_retry_sequence_in_report(self):
        from repro.pro.backends.faults import CrashRank, FaultInjectingBackend

        telemetry = Telemetry()
        faulty = FaultInjectingBackend(
            "process", [CrashRank(rank=1, at_op=1, at_run=0)],
            transport="sharedmem", persistent=True)
        machine = PROMachine(P, seed=SEED, backend=faulty, retry=2,
                             telemetry=telemetry)
        try:
            result = machine.run(_barrier_program)
        finally:
            machine.close()
        assert result.results == list(range(P))
        payload = telemetry.last.to_dict()
        assert payload["resilience"]["retries"] == 1
        kinds = [e["kind"] for e in payload["events"]]
        assert "retry" in kinds and "pool-heal" in kinds
        assert kinds.index("retry") < kinds.index("pool-heal")
        heal = next(e for e in payload["events"] if e["kind"] == "pool-heal")
        assert 1 in heal["respawned"]
        text = telemetry.last.summary()
        assert "1 failed attempt(s) absorbed" in text


def _barrier_program(ctx):
    # The alltoall produces the early fabric ops the crash plan's at_op
    # counter fires on (barriers alone are not counted operations).
    ctx.comm.alltoall([ctx.rank] * ctx.comm.size)
    ctx.comm.barrier()
    return ctx.rank


class TestValidation:
    def test_machine_rejects_non_recorder(self):
        with pytest.raises(ValidationError, match="record"):
            PROMachine(2, telemetry=object())

    def test_resolve_machine_rejects_telemetry_with_premade_machine(self):
        machine = PROMachine(2, seed=0)
        try:
            with pytest.raises(ValidationError, match="telemetry"):
                resolve_machine(2, machine=machine, telemetry=Telemetry())
        finally:
            machine.close()

    def test_sequential_matrix_path_rejects_telemetry(self):
        from repro.core.api import sample_communication_matrix

        with pytest.raises(ValidationError, match="parallel"):
            sample_communication_matrix([4, 4], seed=0, telemetry=Telemetry())


#: (backend, transport, persistent) cells of the determinism guard.
GRID = [
    ("thread", None, False),
    ("sim", None, False),
    ("process", "sharedmem", False),
    ("process", "pickle", False),
    ("process", "sharedmem", True),
    ("process", "pickle", True),
]


class TestTelemetryNeverPerturbsResults:
    """Satellite 5: collection is passive, bit-exactly."""

    @pytest.mark.subprocess  # process cells spawn fleets
    @pytest.mark.parametrize("backend,transport,persistent", GRID,
                             ids=["-".join(str(p) for p in cell if p)
                                  or cell[0] for cell in GRID])
    def test_fixed_seed_identical_with_and_without_telemetry(
            self, backend, transport, persistent):
        data = np.arange(20_000, dtype=np.int64)

        def run(telemetry):
            return random_permutation(
                data, n_procs=P, backend=backend, transport=transport,
                persistent=persistent, seed=SEED, telemetry=telemetry)

        plain = run(None)
        telemetry = Telemetry()
        observed = run(telemetry)
        assert np.array_equal(plain, observed)
        assert len(telemetry) == 1  # the recorder did collect a report

    def test_inline_backend_at_p1(self):
        data = np.arange(5_000, dtype=np.int64)
        plain = random_permutation(data, n_procs=1, backend="inline",
                                   seed=SEED)
        telemetry = Telemetry()
        observed = random_permutation(data, n_procs=1, backend="inline",
                                      seed=SEED, telemetry=telemetry)
        assert np.array_equal(plain, observed)
        assert telemetry.last.to_dict()["ranks"][0]["transport"] == \
            zeroed_transport_stats()
