"""Unit tests for the command-line interface (and the pool() front door)."""

import pytest

from repro.cli import build_parser, main
from repro.util.errors import BackendError, ValidationError


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_permute_defaults(self):
        args = build_parser().parse_args(["permute", "--n", "100"])
        assert args.command == "permute"
        assert args.procs == 4
        assert args.matrix_algorithm == "root"

    def test_matrix_requires_sizes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_transport_flag_parsed(self):
        args = build_parser().parse_args(
            ["permute", "--n", "10", "--backend", "process", "--transport", "sharedmem"]
        )
        assert args.transport == "sharedmem"
        assert build_parser().parse_args(["permute", "--n", "10"]).transport is None

    def test_transport_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["permute", "--n", "10", "--transport", "carrier-pigeon"]
            )

    def test_persistent_flag_parsed(self):
        args = build_parser().parse_args(
            ["permute", "--n", "10", "--backend", "process", "--persistent",
             "--repeats", "3"]
        )
        assert args.persistent and args.repeats == 3
        assert not build_parser().parse_args(["permute", "--n", "10"]).persistent

    def test_schedule_seed_parsed_on_permute_and_matrix(self):
        args = build_parser().parse_args(
            ["permute", "--n", "10", "--backend", "sim", "--schedule-seed", "7"]
        )
        assert args.backend == "sim" and args.schedule_seed == 7
        args = build_parser().parse_args(
            ["matrix", "--sizes", "4,4", "--backend", "sim", "--schedule-seed", "0"]
        )
        assert args.schedule_seed == 0
        assert build_parser().parse_args(["permute", "--n", "10"]).schedule_seed is None

    def test_sim_backend_is_a_choice_everywhere(self):
        for argv in (["permute", "--n", "10", "--backend", "sim"],
                     ["matrix", "--sizes", "4,4", "--backend", "sim"]):
            assert build_parser().parse_args(argv).backend == "sim"

    def test_retries_and_deadline_parsed_on_permute_and_matrix(self):
        args = build_parser().parse_args(
            ["permute", "--n", "10", "--retries", "3", "--deadline", "2.5"])
        assert args.retries == 3 and args.deadline == 2.5
        args = build_parser().parse_args(
            ["matrix", "--sizes", "4,4", "--retries", "2"])
        assert args.retries == 2 and args.deadline is None
        defaults = build_parser().parse_args(["permute", "--n", "10"])
        assert defaults.retries is None and defaults.deadline is None


class TestCommands:
    def test_permute(self, capsys):
        code = main(["permute", "--n", "200", "--procs", "3", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "permuted 200 items" in out
        assert "Per-processor resource usage" in out

    def test_permute_alg6(self, capsys):
        code = main(["permute", "--n", "60", "--procs", "3", "--seed", "1",
                     "--matrix-algorithm", "alg6"])
        assert code == 0
        assert "permuted 60 items" in capsys.readouterr().out

    @pytest.mark.subprocess
    def test_permute_process_transport(self, capsys):
        code = main(["permute", "--n", "200", "--procs", "2", "--seed", "1",
                     "--backend", "process", "--transport", "sharedmem"])
        assert code == 0
        assert "permuted 200 items" in capsys.readouterr().out

    @pytest.mark.subprocess
    def test_permute_persistent_repeats(self, capsys):
        code = main(["permute", "--n", "200", "--procs", "2", "--seed", "1",
                     "--backend", "process", "--persistent", "--repeats", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "run 3/3" in out
        assert "process persistent backend" in out

    def test_transport_rejected_for_thread_backend(self):
        with pytest.raises(ValidationError, match="does not accept"):
            main(["permute", "--n", "50", "--backend", "thread",
                  "--transport", "sharedmem"])

    def test_permute_sim_schedule_seed(self, capsys):
        code = main(["permute", "--n", "300", "--procs", "4", "--seed", "1",
                     "--backend", "sim", "--schedule-seed", "13"])
        out = capsys.readouterr().out
        assert code == 0
        assert "permuted 300 items" in out and "sim backend" in out

    def test_permute_sim_results_match_thread_backend(self, capsys):
        outputs = []
        for extra in (["--backend", "thread"],
                      ["--backend", "sim", "--schedule-seed", "5"]):
            assert main(["permute", "--n", "120", "--procs", "3",
                         "--seed", "9", *extra]) == 0
            out = capsys.readouterr().out
            outputs.append(next(line for line in out.splitlines()
                                if line.startswith("first ")))
        assert outputs[0] == outputs[1]

    def test_schedule_seed_rejected_for_thread_backend(self):
        with pytest.raises(ValidationError, match="does not accept"):
            main(["permute", "--n", "50", "--backend", "thread",
                  "--schedule-seed", "3"])

    def test_repeats_clamped_to_at_least_one(self, capsys):
        code = main(["permute", "--n", "60", "--procs", "2", "--seed", "1",
                     "--repeats", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "permuted 60 items" in out and "run 0/" not in out

    def test_matrix_sequential(self, capsys):
        code = main(["matrix", "--sizes", "5,5,5", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "row sums   : [5, 5, 5]" in out

    def test_matrix_parallel_with_targets(self, capsys):
        code = main(["matrix", "--sizes", "4,4,4", "--target-sizes", "6,3,3",
                     "--algorithm", "alg6", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "column sums: [6, 3, 3]" in out

    def test_matrix_sim_backend_matches_thread(self, capsys):
        outputs = []
        for extra in (["--backend", "thread"],
                      ["--backend", "sim", "--schedule-seed", "4"]):
            assert main(["matrix", "--sizes", "5,5,5", "--algorithm", "alg5",
                         "--seed", "11", *extra]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    @pytest.mark.subprocess
    def test_matrix_process_transport(self, capsys):
        code = main(["matrix", "--sizes", "6,6", "--algorithm", "root",
                     "--backend", "process", "--transport", "pickle",
                     "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "row sums   : [6, 6]" in out

    @pytest.mark.subprocess
    def test_matrix_persistent_pool(self, capsys):
        code = main(["matrix", "--sizes", "5,5", "--algorithm", "alg6",
                     "--backend", "process", "--persistent", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "row sums   : [5, 5]" in out

    def test_matrix_transport_rejected_on_sequential_path(self):
        with pytest.raises(ValidationError, match="parallel"):
            main(["matrix", "--sizes", "5,5", "--transport", "pickle"])

    def test_matrix_persistent_rejected_on_sequential_path(self):
        with pytest.raises(ValidationError, match="parallel"):
            main(["matrix", "--sizes", "5,5", "--persistent"])

    def test_matrix_schedule_seed_rejected_on_sequential_path(self):
        with pytest.raises(ValidationError, match="parallel"):
            main(["matrix", "--sizes", "5,5", "--schedule-seed", "2"])

    def test_permute_with_retries_matches_unsupervised_run(self, capsys):
        argv = ["permute", "--n", "120", "--procs", "3", "--seed", "9",
                "--backend", "thread"]
        assert main(argv + ["--retries", "2", "--deadline", "60"]) == 0
        supervised = capsys.readouterr().out
        assert main(argv) == 0
        plain = capsys.readouterr().out

        # Supervision only changes what happens on failure: a healthy run
        # prints the identical permutation and cost table (the wall-clock
        # header line is timing noise, so it is excluded).
        def _stable(out):
            return [line for line in out.splitlines() if "wall clock" not in line]

        assert _stable(supervised) == _stable(plain)

    def test_matrix_retries_rejected_on_sequential_path(self):
        with pytest.raises(ValidationError, match="parallel"):
            main(["matrix", "--sizes", "5,5", "--retries", "2"])

    def test_scaling_paper(self, capsys):
        code = main(["scaling", "--paper"])
        out = capsys.readouterr().out
        assert code == 0
        assert "overhead factor" in out
        assert "crossover at p = 6" in out

    def test_scaling_measured(self, capsys):
        code = main(["scaling", "--measure", "5000", "--procs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Measured on this machine" in out

    def test_uniformity(self, capsys):
        code = main(["uniformity", "--n", "4", "--procs", "2", "--samples", "1500", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "uniformity NOT rejected" in out

    def test_randoms(self, capsys):
        code = main(["randoms", "--procs", "6", "--items-per-proc", "100", "--matrices", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "uniforms per call" in out


    @pytest.mark.subprocess
    @pytest.mark.slow
    def test_scaling_measured_with_transport(self, capsys):
        code = main(["scaling", "--measure", "3000", "--procs", "2",
                     "--backend", "process", "--transport", "pickle"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Measured on this machine" in out


def _allreduce_program(ctx):
    return ctx.comm.allreduce(ctx.rank)


def _raise_program(ctx):
    raise RuntimeError("boom inside the pool")


@pytest.mark.subprocess
class TestPoolContextManagerErrorPaths:
    """pool() must release its standing fleet on *every* exit path."""

    def test_body_exception_still_closes_the_fleet(self):
        from repro.pro.backends.pool import pool

        with pytest.raises(RuntimeError, match="user code"):
            with pool(2, seed=0) as machine:
                assert machine.run(_allreduce_program).results == [1, 1]
                saved = machine
                raise RuntimeError("user code went wrong")
        assert not saved.backend._pools  # fleet released, nothing standing

    def test_failed_run_propagates_and_fleet_is_released(self):
        from repro.pro.backends.pool import pool

        with pytest.raises(BackendError, match="rank"):
            with pool(2, seed=0) as machine:
                saved = machine
                machine.run(_raise_program)
        assert not saved.backend._pools

    def test_poisoned_fleet_inside_the_context(self):
        from repro.pro.backends.pool import pool

        with pool(2, seed=0) as machine:
            with pytest.raises(BackendError):
                machine.run(_raise_program)
            with pytest.raises(BackendError, match="poisoned"):
                machine.run(_allreduce_program)

    def test_invalid_n_procs_raises_before_spawning(self):
        from repro.pro.backends.pool import pool

        with pytest.raises(ValidationError):
            with pool(0, seed=0):
                pass  # pragma: no cover - never entered

    def test_invalid_transport_raises_before_spawning(self):
        from repro.pro.backends.pool import pool

        with pytest.raises(ValidationError, match="transport"):
            with pool(2, seed=0, transport="carrier-pigeon"):
                pass  # pragma: no cover - never entered

    def test_machine_usable_again_after_context_exit(self):
        from repro.pro.backends.pool import pool

        with pool(2, seed=0) as machine:
            first = machine.run(_allreduce_program).results
        # exiting closed the fleet; a later run simply respawns one
        assert machine.run(_allreduce_program).results == first
        machine.close()


class TestStatsAndTelemetry:
    def test_stats_parser_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.command == "stats"
        assert args.procs == 4 and args.n == 100_000 and args.seed == 0
        assert args.json is None

    def test_telemetry_json_flag_on_permute_and_matrix(self):
        args = build_parser().parse_args(
            ["permute", "--n", "10", "--telemetry-json", "out.json"])
        assert args.telemetry_json == "out.json"
        args = build_parser().parse_args(
            ["matrix", "--sizes", "4,4", "--telemetry-json", "out.json"])
        assert args.telemetry_json == "out.json"
        assert build_parser().parse_args(
            ["permute", "--n", "10"]).telemetry_json is None

    def test_stats_prints_a_fleet_report(self, capsys):
        assert main(["stats", "--n", "2000", "--procs", "2",
                     "--backend", "thread"]) == 0
        out = capsys.readouterr().out
        assert "fleet report: backend=thread" in out
        assert "kernel tier" in out
        assert "resilience: no retries" in out

    def test_stats_json_dumps_every_report(self, tmp_path, capsys):
        import json

        path = tmp_path / "fleet.json"
        assert main(["stats", "--n", "2000", "--procs", "2",
                     "--backend", "thread", "--repeats", "3",
                     "--json", str(path)]) == 0
        reports = json.loads(path.read_text())
        assert len(reports) == 3
        for report in reports:
            assert report["schema"] == 1
            assert len(report["ranks"]) == 2
        assert "3 fleet report(s)" in capsys.readouterr().out

    def test_permute_verbose_routes_through_fleet_report(self, capsys):
        assert main(["permute", "--n", "2000", "--procs", "2",
                     "--seed", "5", "--verbose"]) == 0
        out = capsys.readouterr().out
        # One formatting path: the verbose block IS FleetReport.summary().
        assert "fleet report: backend=thread" in out
        assert "rank 0: kernel tier" in out
        assert "rank 1: transport" in out

    def test_permute_telemetry_json_writes_the_report(self, tmp_path, capsys):
        import json

        path = tmp_path / "fleet.json"
        assert main(["permute", "--n", "2000", "--procs", "2",
                     "--telemetry-json", str(path)]) == 0
        report = json.loads(path.read_text())
        assert report["schema"] == 1 and report["n_procs"] == 2
        assert f"fleet report written to {path}" in capsys.readouterr().out

    def test_matrix_sequential_rejects_telemetry_json(self):
        with pytest.raises(ValidationError, match="parallel"):
            main(["matrix", "--sizes", "4,4", "--telemetry-json", "out.json"])

    def test_matrix_parallel_telemetry_json(self, tmp_path):
        import json

        path = tmp_path / "fleet.json"
        assert main(["matrix", "--sizes", "4,4,4", "--algorithm", "alg6",
                     "--seed", "3", "--telemetry-json", str(path)]) == 0
        report = json.loads(path.read_text())
        assert report["backend"] == "thread" and report["n_procs"] == 3


class TestExploreCommand:
    def test_explore_smoke_with_json_report(self, tmp_path, capsys):
        import json

        path = tmp_path / "coverage.json"
        code = main(["explore", "--budget", "25", "--programs", "alg5",
                     "--procs", "2", "--plans", "committed",
                     "--baseline", "10", "--json", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "distinct trace fingerprints" in out
        assert "coverage ratio" in out
        report = json.loads(path.read_text())
        assert report["schema"] == 1
        assert report["budget"] == 25
        assert report["baseline"]["draws"] == 10
        assert report["cells"]

    def test_explore_findings_exit_code_and_commit(self, tmp_path):
        code = main(["explore", "--budget", "40", "--programs", "racy-append",
                     "--procs", "4", "--plans", "none",
                     "--commit", str(tmp_path)])
        assert code == 3  # findings are a failure for CI
        assert list(tmp_path.glob("test_repro_*.py"))

    def test_explore_min_distinct_gate(self, capsys):
        code = main(["explore", "--budget", "12", "--programs", "alg5",
                     "--procs", "2", "--plans", "none",
                     "--min-distinct", "10000"])
        assert code == 4
        assert "coverage regression" in capsys.readouterr().out

    def test_explore_parser_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.budget == 500
        assert args.plans == "auto"
        assert args.procs == "2,4,8"
        assert args.min_distinct is None
