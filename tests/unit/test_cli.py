"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_permute_defaults(self):
        args = build_parser().parse_args(["permute", "--n", "100"])
        assert args.command == "permute"
        assert args.procs == 4
        assert args.matrix_algorithm == "root"

    def test_matrix_requires_sizes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_transport_flag_parsed(self):
        args = build_parser().parse_args(
            ["permute", "--n", "10", "--backend", "process", "--transport", "sharedmem"]
        )
        assert args.transport == "sharedmem"
        assert build_parser().parse_args(["permute", "--n", "10"]).transport is None

    def test_transport_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["permute", "--n", "10", "--transport", "carrier-pigeon"]
            )

    def test_persistent_flag_parsed(self):
        args = build_parser().parse_args(
            ["permute", "--n", "10", "--backend", "process", "--persistent",
             "--repeats", "3"]
        )
        assert args.persistent and args.repeats == 3
        assert not build_parser().parse_args(["permute", "--n", "10"]).persistent


class TestCommands:
    def test_permute(self, capsys):
        code = main(["permute", "--n", "200", "--procs", "3", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "permuted 200 items" in out
        assert "Per-processor resource usage" in out

    def test_permute_alg6(self, capsys):
        code = main(["permute", "--n", "60", "--procs", "3", "--seed", "1",
                     "--matrix-algorithm", "alg6"])
        assert code == 0
        assert "permuted 60 items" in capsys.readouterr().out

    def test_permute_process_transport(self, capsys):
        code = main(["permute", "--n", "200", "--procs", "2", "--seed", "1",
                     "--backend", "process", "--transport", "sharedmem"])
        assert code == 0
        assert "permuted 200 items" in capsys.readouterr().out

    def test_permute_persistent_repeats(self, capsys):
        code = main(["permute", "--n", "200", "--procs", "2", "--seed", "1",
                     "--backend", "process", "--persistent", "--repeats", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "run 3/3" in out
        assert "process persistent backend" in out

    def test_transport_rejected_for_thread_backend(self):
        from repro.util.errors import ValidationError
        with pytest.raises(ValidationError, match="does not accept"):
            main(["permute", "--n", "50", "--backend", "thread",
                  "--transport", "sharedmem"])

    def test_matrix_sequential(self, capsys):
        code = main(["matrix", "--sizes", "5,5,5", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "row sums   : [5, 5, 5]" in out

    def test_matrix_parallel_with_targets(self, capsys):
        code = main(["matrix", "--sizes", "4,4,4", "--target-sizes", "6,3,3",
                     "--algorithm", "alg6", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "column sums: [6, 3, 3]" in out

    def test_scaling_paper(self, capsys):
        code = main(["scaling", "--paper"])
        out = capsys.readouterr().out
        assert code == 0
        assert "overhead factor" in out
        assert "crossover at p = 6" in out

    def test_scaling_measured(self, capsys):
        code = main(["scaling", "--measure", "5000", "--procs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Measured on this machine" in out

    def test_uniformity(self, capsys):
        code = main(["uniformity", "--n", "4", "--procs", "2", "--samples", "1500", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "uniformity NOT rejected" in out

    def test_randoms(self, capsys):
        code = main(["randoms", "--procs", "6", "--items-per-proc", "100", "--matrices", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "uniforms per call" in out
