"""Unit tests for the parallel matrix samplers (Algorithms 5 and 6)."""

import numpy as np
import pytest

from repro.core import commmatrix as cm
from repro.core.parallel_matrix import (
    MATRIX_ALGORITHMS,
    algorithm5_program,
    algorithm6_program,
    final_tile_ranges,
    root_scatter_program,
    sample_matrix_parallel,
)
from repro.pro.machine import PROMachine
from repro.util.errors import BackendError, ValidationError


class TestFinalTileRanges:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 6, 7, 8, 16])
    def test_tiles_partition_the_matrix(self, p):
        tiles = final_tile_ranges(p, p, p)
        covered = np.zeros((p, p), dtype=int)
        for (r_lo, r_hi, c_lo, c_hi) in tiles:
            covered[r_lo:r_hi, c_lo:c_hi] += 1
        assert np.all(covered == 1)

    def test_every_processor_row_is_covered(self):
        p = 8
        tiles = final_tile_ranges(p, p, p)
        for rank in range(p):
            owners = [i for i, (r_lo, r_hi, _, _) in enumerate(tiles) if r_lo <= rank < r_hi]
            assert owners, f"no tile covers row {rank}"

    def test_rectangular_dimensions(self):
        tiles = final_tile_ranges(4, 4, 6)
        covered = np.zeros((4, 6), dtype=int)
        for (r_lo, r_hi, c_lo, c_hi) in tiles:
            covered[r_lo:r_hi, c_lo:c_hi] += 1
        assert np.all(covered == 1)

    def test_tile_sizes_are_balanced(self):
        p = 16
        tiles = final_tile_ranges(p, p, p)
        areas = [(r_hi - r_lo) * (c_hi - c_lo) for (r_lo, r_hi, c_lo, c_hi) in tiles]
        # Each tile should hold O(p) entries (Proposition 9 / equation (9)).
        assert max(areas) <= 2 * p

    def test_single_processor(self):
        assert final_tile_ranges(1, 1, 1) == [(0, 1, 0, 1)]


class TestPrograms:
    @pytest.mark.parametrize("algorithm", ["alg5", "alg6", "root"])
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
    def test_balanced_marginals(self, algorithm, p):
        rows = cols = [6] * p
        matrix, run = sample_matrix_parallel(rows, cols, algorithm=algorithm, seed=p)
        assert cm.is_valid_communication_matrix(matrix, rows, cols)
        assert run.n_procs == p

    @pytest.mark.parametrize("algorithm", ["alg5", "alg6", "root"])
    def test_uneven_marginals(self, algorithm):
        rows = [3, 9, 0, 5, 7]
        cols = [6, 2, 8, 1, 7]
        matrix, _ = sample_matrix_parallel(rows, cols, algorithm=algorithm, seed=1)
        assert cm.is_valid_communication_matrix(matrix, rows, cols)

    @pytest.mark.parametrize("algorithm", ["alg5", "alg6"])
    def test_rectangular_target_side(self, algorithm):
        rows = [4, 4, 4, 4]
        cols = [5, 5, 6]
        matrix, _ = sample_matrix_parallel(rows, cols, algorithm=algorithm, seed=2)
        assert matrix.shape == (4, 3)
        assert cm.is_valid_communication_matrix(matrix, rows, cols)

    def test_defaults_cols_to_rows(self):
        matrix, _ = sample_matrix_parallel([4, 4, 4], algorithm="root", seed=0)
        assert matrix.shape == (3, 3)

    def test_reuse_machine(self):
        machine = PROMachine(3, seed=9)
        a, _ = sample_matrix_parallel([5, 5, 5], machine=machine)
        b, _ = sample_matrix_parallel([5, 5, 5], machine=machine)
        assert not np.array_equal(a, b)  # fresh randomness on the second run

    def test_wrong_machine_size(self):
        machine = PROMachine(2, seed=0)
        with pytest.raises(ValidationError):
            sample_matrix_parallel([5, 5, 5], machine=machine)

    def test_unknown_algorithm(self):
        with pytest.raises(ValidationError):
            sample_matrix_parallel([5, 5], algorithm="alg7")

    def test_mismatched_totals(self):
        with pytest.raises(ValidationError):
            sample_matrix_parallel([5, 5], [4, 4])

    def test_row_sums_must_match_processor_count(self):
        machine = PROMachine(2, seed=0)
        def program(ctx):
            return algorithm5_program(ctx, [1, 2, 3], [2, 2, 2])
        with pytest.raises(BackendError):
            machine.run(program)

    def test_registry_contains_all_algorithms(self):
        assert set(MATRIX_ALGORITHMS) == {"alg5", "alg6", "root"}
        assert MATRIX_ALGORITHMS["alg5"] is algorithm5_program
        assert MATRIX_ALGORITHMS["alg6"] is algorithm6_program
        assert MATRIX_ALGORITHMS["root"] is root_scatter_program


class TestTileStrategyResolution:
    def test_auto_resolves_to_batched_for_vector_methods(self):
        from repro.core.parallel_matrix import resolve_tile_strategy
        assert resolve_tile_strategy("auto", "auto") == "batched"
        assert resolve_tile_strategy("auto", "numpy") == "batched"

    def test_auto_falls_back_for_scalar_methods(self):
        from repro.core.parallel_matrix import resolve_tile_strategy
        assert resolve_tile_strategy("auto", "hin") == "sequential"
        assert resolve_tile_strategy("auto", "hrua") == "sequential"

    def test_explicit_strategies_pass_through(self):
        from repro.core.parallel_matrix import resolve_tile_strategy
        for strategy in ("sequential", "recursive", "batched"):
            assert resolve_tile_strategy(strategy, "auto") == strategy

    def test_unknown_strategy_rejected(self):
        from repro.core.parallel_matrix import resolve_tile_strategy
        with pytest.raises(ValidationError, match="tile_strategy"):
            resolve_tile_strategy("bogus", "auto")

    def test_default_auto_matches_explicit_batched(self):
        # The driver default (auto) must be the vectorized engine path.
        rows = [10, 10, 10, 10]
        default, _ = sample_matrix_parallel(rows, algorithm="alg6", seed=123)
        batched, _ = sample_matrix_parallel(rows, algorithm="alg6", seed=123,
                                            tile_strategy="batched")
        assert np.array_equal(default, batched)

    def test_scalar_method_still_works_with_auto(self):
        rows = [6, 6, 6, 6]
        matrix, _ = sample_matrix_parallel(rows, algorithm="alg6", seed=5,
                                           method="hin")
        assert np.array_equal(matrix.sum(axis=1), rows)

    def test_alg5_accepts_auto_and_sequential_only(self):
        matrix, _ = sample_matrix_parallel([4, 4], algorithm="alg5", seed=0,
                                           tile_strategy="auto")
        assert matrix.sum() == 8
        with pytest.raises(ValidationError, match="alg5"):
            sample_matrix_parallel([4, 4], algorithm="alg5", seed=0,
                                   tile_strategy="batched")


class TestCostStructure:
    def test_alg6_per_processor_words_are_linear_in_p(self):
        """Proposition 9: O(p) words per processor for Algorithm 6."""
        per_proc_words = {}
        for p in (4, 8, 16):
            rows = cols = [4] * p
            _, run = sample_matrix_parallel(rows, cols, algorithm="alg6", seed=p)
            per_proc_words[p] = run.cost_report.max_over_ranks("words_sent")
        # Doubling p should roughly double (not quadruple) the per-processor words.
        growth_small = per_proc_words[8] / max(per_proc_words[4], 1)
        growth_large = per_proc_words[16] / max(per_proc_words[8], 1)
        assert growth_large < 3.5
        assert per_proc_words[16] < 16 * 16  # far below the O(p^2) of a full matrix

    def test_alg5_head_processor_does_log_factor_more(self):
        """Proposition 8 vs 9: Algorithm 5 grows like p log p, Algorithm 6 like p."""
        words = {}
        for p in (16, 64):
            rows = cols = [4] * p
            _, run5 = sample_matrix_parallel(rows, cols, algorithm="alg5", seed=1)
            _, run6 = sample_matrix_parallel(rows, cols, algorithm="alg6", seed=1)
            words[("alg5", p)] = run5.cost_report.max_over_ranks("words_sent")
            words[("alg6", p)] = run6.cost_report.max_over_ranks("words_sent")
        growth5 = words[("alg5", 64)] / words[("alg5", 16)]
        growth6 = words[("alg6", 64)] / words[("alg6", 16)]
        # Quadrupling p multiplies alg5's per-processor communication by more
        # than alg6's (p log p versus p), and at p = 64 alg5 is already the
        # more expensive of the two.
        assert growth5 > growth6
        assert words[("alg5", 64)] > words[("alg6", 64)]

    def test_root_algorithm_concentrates_work_on_rank0(self):
        p = 8
        rows = cols = [4] * p
        _, run = sample_matrix_parallel(rows, cols, algorithm="root", seed=3)
        per_rank = run.cost_report.per_rank_totals()
        root_ops = per_rank[0]["compute_ops"]
        other_ops = max(r["compute_ops"] for r in per_rank[1:])
        assert root_ops >= other_ops
        assert root_ops >= p * p  # the O(p^2) matrix lives on the root
