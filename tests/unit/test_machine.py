"""Unit tests for PROMachine, ProcessorContext and the backends."""

import numpy as np
import pytest

from repro.pro.backends.inline import InlineBackend
from repro.pro.machine import PROMachine
from repro.pro.topology import Ring
from repro.rng.counting import CountingRNG
from repro.util.errors import BackendError, ValidationError
from repro.util.timeouts import scale_timeout


class TestConstruction:
    def test_basic(self):
        machine = PROMachine(4, seed=0)
        assert machine.n_procs == 4
        assert "thread" in repr(machine)

    def test_zero_procs_rejected(self):
        with pytest.raises(ValidationError):
            PROMachine(0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            PROMachine(2, backend="gpu")

    def test_inline_backend_requires_single_proc(self):
        with pytest.raises(ValidationError):
            PROMachine(2, backend="inline")
        assert PROMachine(1, backend="inline").n_procs == 1

    def test_persistent_requires_backend_name(self):
        with pytest.raises(ValidationError, match="persistent"):
            PROMachine(1, backend=InlineBackend(), persistent=True)

    def test_persistent_rejected_by_backends_without_pools(self):
        with pytest.raises(ValidationError, match="does not accept"):
            PROMachine(2, backend="thread", persistent=True)

    def test_close_and_context_manager_are_noops_in_process(self):
        machine = PROMachine(2, seed=0)
        assert not machine.persistent
        machine.close()
        machine.close()  # idempotent
        with PROMachine(2, seed=0) as scoped:
            assert scoped.run(lambda ctx: ctx.rank).results == [0, 1]

    def test_custom_backend_object(self):
        machine = PROMachine(1, backend=InlineBackend())
        assert machine.run(lambda ctx: ctx.rank).results == [0]

    def test_backend_object_without_run_rejected(self):
        with pytest.raises(ValidationError):
            PROMachine(1, backend=object())

    def test_topology_by_name(self):
        machine = PROMachine(4, topology="ring")
        assert isinstance(machine.topology, Ring)

    def test_topology_instance_size_checked(self):
        with pytest.raises(ValidationError):
            PROMachine(4, topology=Ring(3))

    def test_unknown_topology_name(self):
        with pytest.raises(ValidationError):
            PROMachine(4, topology="moebius")


class TestRun:
    def test_results_ordered_by_rank(self):
        machine = PROMachine(5, seed=0)
        assert machine.run(lambda ctx: ctx.rank * 2).results == [0, 2, 4, 6, 8]

    def test_program_args_and_kwargs_forwarded(self):
        machine = PROMachine(3, seed=0)
        def program(ctx, offset, scale=1):
            return (ctx.rank + offset) * scale
        assert machine.run(program, 10, scale=2).results == [20, 22, 24]

    def test_non_callable_program_rejected(self):
        with pytest.raises(ValidationError):
            PROMachine(2).run("not callable")

    def test_context_fields(self):
        machine = PROMachine(3, seed=0)
        def program(ctx):
            return (ctx.rank, ctx.n_procs, ctx.is_root)
        results = machine.run(program).results
        assert results[0] == (0, 3, True)
        assert results[2] == (2, 3, False)

    def test_rng_streams_differ_per_rank(self):
        machine = PROMachine(4, seed=7)
        results = machine.run(lambda ctx: tuple(ctx.rng.integers(0, 2**31, 4).tolist())).results
        assert len(set(results)) == 4

    def test_same_seed_same_first_run(self):
        a = PROMachine(3, seed=5).run(lambda ctx: ctx.rng.integers(0, 1000, 3).tolist()).results
        b = PROMachine(3, seed=5).run(lambda ctx: ctx.rng.integers(0, 1000, 3).tolist()).results
        assert a == b

    def test_consecutive_runs_use_fresh_randomness(self):
        machine = PROMachine(3, seed=5)
        first = machine.run(lambda ctx: ctx.rng.integers(0, 10**9)).results
        second = machine.run(lambda ctx: ctx.rng.integers(0, 10**9)).results
        assert first != second

    def test_wall_clock_positive(self):
        assert PROMachine(2, seed=0).run(lambda ctx: None).wall_clock_seconds > 0

    def test_exception_in_rank_becomes_backend_error(self):
        def program(ctx):
            if ctx.rank == 1:
                raise RuntimeError("boom on rank 1")
            ctx.comm.barrier()
        with pytest.raises(BackendError, match="rank 1"):
            PROMachine(3, seed=0, timeout=scale_timeout(5)).run(program)

    def test_count_random_variates(self):
        machine = PROMachine(2, seed=0, count_random_variates=True)
        def program(ctx):
            assert isinstance(ctx.rng, CountingRNG)
            ctx.rng.random(10)
            return None
        result = machine.run(program)
        assert result.cost_report.total("random_variates") == 20

    def test_log_compute_and_variates(self):
        machine = PROMachine(2, seed=0)
        def program(ctx):
            ctx.log_compute(11)
            ctx.log_random_variates(3)
            return None
        report = machine.run(program).cost_report
        assert report.total("compute_ops") == 22
        assert report.total("random_variates") == 6

    def test_run_result_accessors(self):
        machine = PROMachine(2, seed=0)
        res = machine.run(lambda ctx: ctx.rank)
        assert res.result() == 0
        assert res.result(1) == 1
        assert res.n_procs == 2

    def test_predicted_time_from_run_result(self):
        from repro.pro.cost import LAPTOP_PYTHON_PARAMETERS
        machine = PROMachine(2, seed=0)
        def program(ctx):
            ctx.log_compute(1000)
            return None
        res = machine.run(program)
        assert res.predicted_time(LAPTOP_PYTHON_PARAMETERS) > 0


class TestMapBlocks:
    def test_applies_function_per_rank(self):
        machine = PROMachine(3, seed=0)
        blocks = [np.arange(3), np.arange(4), np.arange(5)]
        results = machine.map_blocks(lambda ctx, block: int(block.sum()) + ctx.rank, blocks)
        assert results == [3, 7, 12]

    def test_wrong_block_count_rejected(self):
        machine = PROMachine(3, seed=0)
        with pytest.raises(ValidationError):
            machine.map_blocks(lambda ctx, block: None, [np.arange(2)])


class TestInlineBackend:
    def test_single_rank_collectives_work(self):
        machine = PROMachine(1, backend="inline", seed=0)
        def program(ctx):
            ctx.comm.barrier()
            return ctx.comm.allreduce(5)
        assert machine.run(program).results == [5]

    def test_rejects_multiple_contexts(self):
        backend = InlineBackend()
        with pytest.raises(BackendError):
            backend.run([object(), object()], lambda ctx: None, (), {})
