"""Unit tests for Algorithm 1 (parallel permutation) and its front ends."""

import numpy as np
import pytest

from repro.core.blocks import BlockDistribution
from repro.core.permutation import (
    local_shuffle,
    parallel_permutation_program,
    permute_distributed,
    random_permutation,
    random_permutation_indices,
)
from repro.util.errors import BackendError, ValidationError


class TestLocalShuffle:
    def test_preserves_multiset(self, rng):
        data = np.array([5, 5, 1, 2, 9])
        out = local_shuffle(data, rng)
        assert sorted(out.tolist()) == sorted(data.tolist())

    def test_does_not_modify_input(self, rng):
        data = np.arange(10)
        local_shuffle(data, rng)
        assert np.array_equal(data, np.arange(10))

    def test_empty_and_single(self, rng):
        assert local_shuffle(np.empty(0), rng).size == 0
        assert local_shuffle(np.array([7]), rng).tolist() == [7]


class TestPermuteDistributed:
    def test_preserves_items_and_sizes(self, machine4):
        blocks = [np.arange(i * 10, i * 10 + 6) for i in range(4)]
        out_blocks, run = permute_distributed(blocks, machine=machine4)
        assert [len(b) for b in out_blocks] == [6, 6, 6, 6]
        merged = np.concatenate(out_blocks)
        assert sorted(merged.tolist()) == sorted(np.concatenate(blocks).tolist())
        assert run.n_procs == 4

    def test_uneven_blocks(self, machine3):
        blocks = [np.arange(0, 3), np.arange(3, 10), np.arange(10, 12)]
        out_blocks, _ = permute_distributed(blocks, machine=machine3)
        assert [len(b) for b in out_blocks] == [3, 7, 2]
        assert sorted(np.concatenate(out_blocks).tolist()) == list(range(12))

    def test_explicit_target_sizes(self, machine3):
        blocks = [np.arange(0, 8), np.arange(8, 10), np.arange(10, 12)]
        out_blocks, _ = permute_distributed(blocks, machine=machine3, target_sizes=[4, 4, 4])
        assert [len(b) for b in out_blocks] == [4, 4, 4]
        assert sorted(np.concatenate(out_blocks).tolist()) == list(range(12))

    def test_target_sizes_must_sum(self, machine3):
        blocks = [np.arange(4), np.arange(4), np.arange(4)]
        with pytest.raises((ValidationError, BackendError)):
            permute_distributed(blocks, machine=machine3, target_sizes=[4, 4, 5])

    def test_target_sizes_wrong_length(self, machine3):
        blocks = [np.arange(4), np.arange(4), np.arange(4)]
        with pytest.raises((ValidationError, BackendError)):
            permute_distributed(blocks, machine=machine3, target_sizes=[6, 6])

    @pytest.mark.parametrize("matrix_algorithm", ["root", "alg5", "alg6"])
    def test_all_matrix_algorithms(self, matrix_algorithm):
        blocks = [np.arange(i * 5, (i + 1) * 5) for i in range(5)]
        out_blocks, _ = permute_distributed(
            blocks, matrix_algorithm=matrix_algorithm, seed=7
        )
        assert sorted(np.concatenate(out_blocks).tolist()) == list(range(25))

    def test_unknown_matrix_algorithm(self, machine2):
        blocks = [np.arange(3), np.arange(3)]
        with pytest.raises((ValidationError, BackendError)):
            permute_distributed(blocks, machine=machine2, matrix_algorithm="alg9")

    def test_empty_blocks_allowed(self, machine3):
        blocks = [np.arange(5), np.empty(0, dtype=np.int64), np.arange(5, 8)]
        out_blocks, _ = permute_distributed(blocks, machine=machine3)
        assert [len(b) for b in out_blocks] == [5, 0, 3]

    def test_no_blocks_rejected(self):
        with pytest.raises(ValidationError):
            permute_distributed([])

    def test_machine_size_mismatch(self, machine2):
        with pytest.raises(ValidationError):
            permute_distributed([np.arange(2)] * 3, machine=machine2)

    def test_object_payloads(self, machine2):
        blocks = [np.array(["a", "b", "c"], dtype=object), np.array(["d", "e"], dtype=object)]
        out_blocks, _ = permute_distributed(blocks, machine=machine2)
        assert sorted(np.concatenate(out_blocks).tolist()) == ["a", "b", "c", "d", "e"]

    def test_structured_payloads(self, machine2):
        dtype = [("key", np.int64), ("value", np.float64)]
        data = np.zeros(8, dtype=dtype)
        data["key"] = np.arange(8)
        data["value"] = np.arange(8) * 0.5
        blocks = [data[:5], data[5:]]
        out_blocks, _ = permute_distributed(blocks, machine=machine2)
        merged = np.concatenate(out_blocks)
        assert sorted(merged["key"].tolist()) == list(range(8))
        # records stay intact: value must still be key / 2
        assert np.allclose(np.sort(merged["value"]), np.arange(8) * 0.5)

    def test_work_is_balanced(self):
        blocks = [np.arange(i * 100, (i + 1) * 100) for i in range(4)]
        _, run = permute_distributed(blocks, seed=3)
        assert run.cost_report.imbalance("compute_ops") < 1.5
        assert run.cost_report.imbalance("words_sent") < 2.0


class TestRandomPermutation:
    def test_output_is_permutation_of_input(self):
        out = random_permutation(np.arange(100), n_procs=4, seed=0)
        assert sorted(out.tolist()) == list(range(100))

    def test_preserves_dtype(self):
        out = random_permutation(np.arange(50, dtype=np.int32), n_procs=3, seed=0)
        assert out.dtype == np.int32

    def test_accepts_lists(self):
        out = random_permutation([3, 1, 4, 1, 5, 9, 2, 6], n_procs=2, seed=0)
        assert sorted(out.tolist()) == [1, 1, 2, 3, 4, 5, 6, 9]

    def test_single_processor(self):
        out = random_permutation(np.arange(20), n_procs=1, seed=0)
        assert sorted(out.tolist()) == list(range(20))

    def test_more_processors_than_items(self):
        out = random_permutation(np.arange(3), n_procs=6, seed=0)
        assert sorted(out.tolist()) == [0, 1, 2]

    def test_empty_vector(self):
        assert random_permutation(np.empty(0, dtype=np.int64), n_procs=2, seed=0).size == 0

    def test_rejects_2d_input(self):
        with pytest.raises(ValidationError):
            random_permutation(np.zeros((3, 3)), n_procs=2)

    def test_custom_distribution(self):
        dist = BlockDistribution([7, 3])
        out = random_permutation(np.arange(10), n_procs=2, seed=1, distribution=dist)
        assert sorted(out.tolist()) == list(range(10))

    def test_distribution_total_mismatch(self):
        with pytest.raises(ValidationError):
            random_permutation(np.arange(10), n_procs=2, distribution=BlockDistribution([4, 4]))

    def test_distribution_block_count_mismatch(self):
        with pytest.raises(ValidationError):
            random_permutation(np.arange(10), n_procs=3, distribution=BlockDistribution([5, 5]))

    def test_machine_overrides_n_procs(self, machine3):
        out = random_permutation(np.arange(30), n_procs=99, machine=machine3, seed=0)
        assert sorted(out.tolist()) == list(range(30))

    def test_different_seeds_give_different_orders(self):
        a = random_permutation(np.arange(200), n_procs=4, seed=1)
        b = random_permutation(np.arange(200), n_procs=4, seed=2)
        assert not np.array_equal(a, b)

    def test_actually_shuffles(self):
        out = random_permutation(np.arange(500), n_procs=4, seed=3)
        assert not np.array_equal(out, np.arange(500))


class TestRandomPermutationIndices:
    def test_returns_permutation(self):
        perm = random_permutation_indices(16, n_procs=4, seed=5)
        assert sorted(perm.tolist()) == list(range(16))

    def test_zero_length(self):
        assert random_permutation_indices(0, n_procs=2, seed=0).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            random_permutation_indices(-1)


class TestProgramValidation:
    def test_wrong_block_count_inside_program(self, machine2):
        def program(ctx):
            return parallel_permutation_program(ctx, [np.arange(3)])
        with pytest.raises(BackendError):
            machine2.run(program)

    def test_supersteps_recorded(self):
        blocks = [np.arange(20), np.arange(20, 40)]
        _, run = permute_distributed(blocks, seed=0)
        # At least: shuffle barrier + exchange barrier.
        assert run.cost_report.n_supersteps() >= 3
