"""Unit tests for the top-level public API."""

import numpy as np
import pytest

import repro
from repro.core import commmatrix as cm
from repro.core.api import sample_communication_matrix
from repro.pro.machine import PROMachine
from repro.util.errors import ValidationError


class TestTopLevelExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_example(self):
        shuffled = repro.random_permutation(np.arange(12), n_procs=3, seed=42)
        assert sorted(shuffled.tolist()) == list(range(12))


class TestSampleCommunicationMatrix:
    def test_sequential_default(self):
        matrix = sample_communication_matrix([5, 5, 5], seed=0)
        assert cm.is_valid_communication_matrix(matrix, [5, 5, 5], [5, 5, 5])

    def test_sequential_recursive_strategy(self):
        matrix = sample_communication_matrix([4, 4], [3, 5], algorithm="recursive", seed=0)
        assert cm.is_valid_communication_matrix(matrix, [4, 4], [3, 5])

    def test_sequential_with_explicit_rng(self):
        rng = np.random.default_rng(3)
        a = sample_communication_matrix([6, 6], rng=rng)
        b = sample_communication_matrix([6, 6], rng=np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_sequential_rejects_parallel_algorithm_names(self):
        with pytest.raises(ValidationError):
            sample_communication_matrix([4, 4], algorithm="alg6")

    @pytest.mark.parametrize("algorithm", ["alg5", "alg6", "root", None])
    def test_parallel_path(self, algorithm):
        matrix = sample_communication_matrix(
            [4, 4, 4], parallel=True, algorithm=algorithm, seed=1
        )
        assert cm.is_valid_communication_matrix(matrix, [4, 4, 4], [4, 4, 4])

    def test_parallel_with_machine(self):
        machine = PROMachine(3, seed=5)
        matrix = sample_communication_matrix([2, 2, 2], parallel=True, machine=machine)
        assert matrix.shape == (3, 3)

    def test_parallel_rejects_sequential_strategy_names(self):
        with pytest.raises(ValidationError):
            sample_communication_matrix([4, 4], parallel=True, algorithm="recursive")

    def test_col_sums_default_to_row_sums(self):
        matrix = sample_communication_matrix([3, 7], seed=2)
        assert matrix.sum(axis=0).tolist() == [3, 7]
