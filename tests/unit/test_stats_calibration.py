"""Calibration tests for the occupancy uniformity statistic.

The occupancy test compares the Pearson statistic of summed permutation
matrices against a rescaled chi-square (see the docstring of
``position_occupancy_test``).  These tests verify the calibration itself:
under the null (NumPy's uniform shuffler) the p-values must be neither
systematically tiny (over-rejection) nor systematically huge
(under-rejection / loss of power).
"""

import numpy as np

from repro.stats.uniformity import position_occupancy_test


def _pvalues(n, n_seeds, n_samples):
    values = []
    for seed in range(n_seeds):
        rng = np.random.default_rng(1_000 + seed)
        result = position_occupancy_test(lambda: rng.permutation(n), n, n_samples)
        values.append(result.p_value)
    return values


class TestOccupancyCalibration:
    def test_null_p_values_not_clustered_low(self):
        values = _pvalues(10, 8, 1200)
        # With a correctly calibrated statistic, seeing all eight p-values
        # below 0.2 has probability ~2.5e-6; the old, uncorrected statistic
        # produced exactly that failure mode.
        assert max(values) > 0.2

    def test_null_p_values_not_clustered_high(self):
        values = _pvalues(10, 8, 1200)
        # Symmetrically, all values above 0.8 would indicate an over-wide
        # reference distribution (loss of power).
        assert min(values) < 0.8

    def test_statistic_mean_matches_dof(self):
        # The rescaled statistic should have mean ~ (n-1)^2 under the null.
        n, n_samples = 8, 1500
        stats = []
        for seed in range(6):
            rng = np.random.default_rng(seed)
            result = position_occupancy_test(lambda: rng.permutation(n), n, n_samples)
            stats.append(result.statistic)
        mean = float(np.mean(stats))
        dof = (n - 1) ** 2
        assert 0.75 * dof < mean < 1.25 * dof

    def test_single_item_degenerate_case(self):
        rng = np.random.default_rng(0)
        result = position_occupancy_test(lambda: rng.permutation(1), 1, 50)
        assert result.p_value == 1.0
