"""Unit tests for the hypergeometric distribution module."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core import hypergeometric as hg
from repro.rng.counting import CountingRNG
from repro.util.errors import ValidationError


class TestSupportAndMoments:
    def test_support_regular(self):
        assert hg.support(5, 10, 7) == (0, 5)

    def test_support_forced_lower(self):
        # drawing 8 from 4 white and 5 black: at least 3 whites
        assert hg.support(8, 4, 5) == (3, 4)

    def test_support_validation(self):
        with pytest.raises(ValidationError):
            hg.support(10, 4, 3)

    def test_mean_and_variance_match_scipy(self):
        t, w, b = 12, 30, 18
        dist = scipy_stats.hypergeom(w + b, w, t)
        assert hg.mean(t, w, b) == pytest.approx(dist.mean())
        assert hg.variance(t, w, b) == pytest.approx(dist.var())

    def test_mode_within_support(self):
        for (t, w, b) in [(5, 10, 7), (8, 4, 5), (1, 1, 1), (20, 3, 50)]:
            lo, hi = hg.support(t, w, b)
            assert lo <= hg.mode(t, w, b) <= hi

    def test_degenerate_empty_urn(self):
        assert hg.mean(0, 0, 0) == 0.0
        assert hg.variance(0, 0, 0) == 0.0


class TestPmf:
    @pytest.mark.parametrize("t,w,b", [(5, 10, 7), (3, 3, 3), (7, 2, 9), (10, 50, 50)])
    def test_matches_scipy(self, t, w, b):
        ks = np.arange(0, t + 1)
        ours = np.array([hg.pmf(int(k), t, w, b) for k in ks])
        scipys = scipy_stats.hypergeom.pmf(ks, w + b, w, t)
        assert np.allclose(ours, scipys, atol=1e-13)

    def test_sums_to_one(self):
        t, w, b = 6, 9, 4
        lo, hi = hg.support(t, w, b)
        total = sum(hg.pmf(k, t, w, b) for k in range(lo, hi + 1))
        assert total == pytest.approx(1.0)

    def test_outside_support_is_zero(self):
        assert hg.pmf(6, 5, 10, 10) == 0.0
        assert hg.pmf(-1, 5, 10, 10) == 0.0
        assert hg.log_pmf(6, 5, 10, 10) == float("-inf")

    def test_point_mass_cases(self):
        assert hg.pmf(0, 0, 5, 5) == 1.0
        assert hg.pmf(3, 3, 5, 0) == 1.0
        assert hg.pmf(5, 5, 5, 0) == 1.0


class TestTrivialSamples:
    def test_zero_draws(self):
        assert hg.sample(0, 10, 10, np.random.default_rng(0)) == 0

    def test_no_whites(self):
        assert hg.sample(4, 0, 10, np.random.default_rng(0)) == 0

    def test_no_blacks(self):
        assert hg.sample(4, 10, 0, np.random.default_rng(0)) == 4

    def test_draw_everything(self):
        assert hg.sample(15, 10, 5, np.random.default_rng(0)) == 10

    def test_trivial_cases_consume_no_randomness(self):
        rng = CountingRNG(0)
        hg.sample(0, 10, 10, rng)
        hg.sample(5, 0, 5, rng)
        hg.sample(5, 5, 0, rng)
        assert rng.total_variates == 0


class TestSamplers:
    @pytest.mark.parametrize("method", ["hin", "hrua", "auto", "numpy"])
    def test_samples_stay_in_support(self, method, rng):
        t, w, b = 12, 20, 15
        lo, hi = hg.support(t, w, b)
        samples = hg.sample_many(t, w, b, 300, rng, method=method)
        assert samples.min() >= lo and samples.max() <= hi

    @pytest.mark.parametrize("method", ["hin", "hrua", "auto"])
    @pytest.mark.parametrize("t,w,b", [(6, 11, 9), (40, 60, 55), (25, 12, 100)])
    def test_goodness_of_fit(self, method, t, w, b):
        rng = np.random.default_rng(hash((method, t, w, b)) % 2**32)
        samples = hg.sample_many(t, w, b, 3000, rng, method=method)
        lo, hi = hg.support(t, w, b)
        ks = np.arange(lo, hi + 1)
        probs = scipy_stats.hypergeom.pmf(ks, w + b, w, t)
        observed = np.array([(samples == k).sum() for k in ks], dtype=float)
        mask = probs * len(samples) >= 5
        chi2 = float((((observed - probs * len(samples)) ** 2 / (probs * len(samples)))[mask]).sum())
        p_value = scipy_stats.chi2.sf(chi2, int(mask.sum()) - 1)
        assert p_value > 1e-4

    def test_sample_means_close_to_expectation(self, rng):
        t, w, b = 50, 120, 80
        samples = hg.sample_many(t, w, b, 2000, rng)
        assert abs(samples.mean() - hg.mean(t, w, b)) < 0.5

    def test_seed_reproducibility(self):
        a = hg.sample_many(20, 30, 25, 10, np.random.default_rng(5))
        b = hg.sample_many(20, 30, 25, 10, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError):
            hg.sample(5, 5, 5, np.random.default_rng(0), method="magic")

    def test_validation_of_parameters(self):
        with pytest.raises(ValidationError):
            hg.sample(-1, 5, 5)
        with pytest.raises(ValidationError):
            hg.sample(11, 5, 5)

    def test_integer_seed_accepted(self):
        value = hg.sample(5, 10, 10, 1234)
        assert 0 <= value <= 5

    def test_sample_many_zero_size(self):
        assert hg.sample_many(5, 10, 10, 0).size == 0


class TestCountingAndRecorder:
    def test_hin_uses_at_most_t_uniforms(self):
        rng = CountingRNG(1)
        hg.sample_hin(8, 100, 120, rng)
        assert rng.uniforms_drawn <= 8

    def test_hrua_uses_even_number_of_uniforms(self):
        rng = CountingRNG(1)
        hg.sample_hrua(50, 70, 60, rng)
        assert rng.uniforms_drawn >= 2
        assert rng.uniforms_drawn % 2 == 0

    def test_sample_with_stats(self):
        params = [(20, 30, 25)] * 50 + [(0, 5, 5)] * 50
        samples, stats = hg.sample_with_stats(params, np.random.default_rng(3))
        assert samples.shape == (100,)
        assert stats.n_samples == 100
        assert stats.max_uniforms >= 1
        assert 0 < stats.mean_uniforms < 10

    def test_recorder_counts_calls(self):
        rng = CountingRNG(2)
        with hg.SampleRecorder() as rec:
            hg.sample(10, 20, 20, rng)
            hg.sample(0, 20, 20, rng)   # trivial, still counted as a call
        assert rec.n_calls == 2
        assert rec.total_uniforms == rng.uniforms_drawn
        assert rec.mean_uniforms == rec.total_uniforms / 2

    def test_recorder_per_call_detail(self):
        rng = CountingRNG(2)
        with hg.SampleRecorder(keep_per_call=True) as rec:
            hg.sample(5, 50, 50, rng)
            hg.sample(40, 50, 50, rng)
        assert len(rec.per_call) == 2
        assert sum(rec.per_call) == rec.total_uniforms

    def test_recorder_not_active_outside_context(self):
        rng = CountingRNG(2)
        with hg.SampleRecorder() as rec:
            hg.sample(10, 20, 20, rng)
        hg.sample(10, 20, 20, rng)
        assert rec.n_calls == 1

    def test_recorder_without_counting_rng_reports_zero_uniforms(self):
        with hg.SampleRecorder() as rec:
            hg.sample(10, 20, 20, np.random.default_rng(0))
        assert rec.n_calls == 1
        assert rec.total_uniforms == 0

    def test_nested_recorders_record_independently(self):
        rng = CountingRNG(4)
        with hg.SampleRecorder() as outer:
            hg.sample(12, 30, 30, rng)
            with hg.SampleRecorder() as inner:
                hg.sample(12, 30, 30, rng)
        assert outer.n_calls == 1
        assert inner.n_calls == 1
