"""Unit tests for the resilience layer (retry policies, deadlines, recovery).

Contract (see :mod:`repro.pro.resilience` and the resilience sub-contract in
:mod:`repro.pro.backends.registry`): only *transient* failures are retried,
replayed attempts reuse the per-rank streams captured at the first attempt
(recovered output is bit-identical to a fault-free run), deadlines surface
as a typed :class:`~repro.util.errors.DeadlineError` that is never retried,
and the fallback chain degrades across backends without changing results.
The cross-process half of the story (supervised worker pools respawning
dead ranks) lives in ``tests/integration/test_retry_fault_matrix.py``; this
module covers the policy/loop semantics on in-process backends.
"""

import time

import numpy as np
import pytest

from repro.core.api import sample_communication_matrix
from repro.core.permutation import random_permutation
from repro.pro.backends.faults import CrashRank, FaultInjectingBackend
from repro.pro.cost import CostReport
from repro.pro.machine import PROMachine, resolve_machine
from repro.pro.resilience import (
    Deadline,
    RetryPolicy,
    _skip_fallback,
    active_deadline,
    committed_chaos_plans,
    current_deadline,
)
from repro.util.errors import (
    BackendError,
    DeadlineError,
    TransientBackendError,
    ValidationError,
    is_transient_failure,
)
from repro.util.timeouts import scale_timeout


# Module-level programs: shared with the machines built by fallback runs.
def _draw_and_exchange(ctx):
    value = float(ctx.rng.random())
    totals = ctx.comm.alltoall([value] * ctx.comm.size)
    ctx.comm.barrier()
    return value, totals


def _fatal_program(ctx, calls):
    calls.append(ctx.rank)
    raise ValueError("deterministic program bug")


def _sleep_past_deadline(ctx):
    # Rank 0 stalls past the whole budget (scaled like the deadline in the
    # test, so the sleep always outlasts it); the sibling's barrier wait is
    # clamped to the remaining budget and fails fast.
    if ctx.rank == 0:
        time.sleep(scale_timeout(1.5))
    ctx.comm.barrier()
    return ctx.rank


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 2
        assert policy.backoff == 0.0
        assert policy.deadline is None
        assert policy.fallback == ()

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2", True])
    def test_rejects_bad_attempt_counts(self, bad):
        with pytest.raises(ValidationError, match="max_attempts"):
            RetryPolicy(max_attempts=bad)

    def test_rejects_bad_backoff_and_deadline(self):
        with pytest.raises(ValidationError, match="backoff"):
            RetryPolicy(backoff=-0.1)
        with pytest.raises(ValidationError, match="deadline"):
            RetryPolicy(deadline=0.0)
        with pytest.raises(ValidationError, match="fallback"):
            RetryPolicy(fallback=("thread", ""))

    def test_fallback_normalised_to_tuple(self):
        assert RetryPolicy(fallback=["thread", "inline"]).fallback == ("thread", "inline")

    def test_resolve(self):
        assert RetryPolicy.resolve(None) is None
        policy = RetryPolicy(max_attempts=5)
        assert RetryPolicy.resolve(policy) is policy
        assert RetryPolicy.resolve(3) == RetryPolicy(max_attempts=3)
        with pytest.raises(ValidationError, match="retry"):
            RetryPolicy.resolve(True)  # a bool is not an attempt count
        with pytest.raises(ValidationError, match="retry"):
            RetryPolicy.resolve("twice")


class TestDeadline:
    def test_clamp_bounds_by_remaining_budget(self):
        deadline = Deadline(100.0)
        assert deadline.clamp(5.0) == 5.0  # plenty of budget: timeout wins
        assert 0.0 < Deadline(0.5).clamp(60.0) <= 0.5  # budget wins

    def test_clamp_never_returns_a_zero_wait(self):
        spent = Deadline(0.001)
        time.sleep(0.01)
        assert spent.expired
        assert spent.clamp(60.0) > 0.0  # floor: fail through the fabric

    def test_active_deadline_publishes_and_restores(self):
        assert current_deadline() is None
        outer, inner = Deadline(10.0), Deadline(5.0)
        with active_deadline(outer):
            assert current_deadline() is outer
            with active_deadline(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None


class TestErrorTaxonomy:
    def test_transient_classification(self):
        assert is_transient_failure(TransientBackendError("crash"))
        assert not is_transient_failure(BackendError("fatal"))
        assert not is_transient_failure(DeadlineError("too slow"))
        assert not is_transient_failure(ValueError("program bug"))

    def test_deadline_and_transient_are_backend_errors(self):
        # Existing except-BackendError sites keep catching both.
        assert issubclass(TransientBackendError, BackendError)
        assert issubclass(DeadlineError, BackendError)


class TestCostReportRetries:
    def test_note_retry_populates_report_and_dict(self):
        machine = PROMachine(2, seed=0, retry=2)
        result = machine.run(lambda ctx: ctx.rank)
        report = result.cost_report
        assert report.retries == 0 and report.degraded_to is None
        report.note_retry(1, 0.25, degraded_to="thread")
        assert report.retries == 1
        assert report.recovery_seconds == pytest.approx(0.25)
        assert report.degraded_to == "thread"
        as_dict = report.as_dict()
        assert as_dict["retries"] == 1
        assert as_dict["degraded_to"] == "thread"
        assert as_dict["recovery_seconds"] == pytest.approx(0.25)


class TestRetryWiring:
    def test_machine_normalises_retry(self):
        assert PROMachine(2, seed=0).retry_policy is None
        assert PROMachine(2, seed=0, retry=3).retry_policy.max_attempts == 3
        with pytest.raises(ValidationError):
            PROMachine(2, seed=0, retry=0)

    def test_resolve_machine_rejects_retry_with_machine(self):
        machine = PROMachine(2, seed=0)
        with pytest.raises(ValidationError, match="retry"):
            resolve_machine(2, machine=machine, retry=2)

    def test_sequential_matrix_path_rejects_retry(self):
        with pytest.raises(ValidationError, match="retry"):
            sample_communication_matrix([4, 4], retry=2, seed=0)

    def test_committed_chaos_plans_are_first_attempt_faults(self):
        plans = committed_chaos_plans()
        assert set(plans) == {
            "crash-root-early", "crash-rank1-mid",
            "drop-first-0-to-1", "barrier-timeout-last-rank",
        }
        for faults in plans.values():
            assert all(fault.at_run == 0 for fault in faults)


class TestSkipFallback:
    def test_skips_the_failing_backend_and_its_fault_wrapper(self):
        plain = PROMachine(2, seed=0, backend="thread")
        wrapped = PROMachine(
            2, seed=0, backend=FaultInjectingBackend("thread", [CrashRank(rank=0)]))
        try:
            assert _skip_fallback("thread", plain)
            assert _skip_fallback("thread", wrapped)  # name is "faulty+thread"
            assert not _skip_fallback("sim", plain)
        finally:
            plain.close()
            wrapped.close()

    def test_inline_only_serves_single_rank_machines(self):
        wide, narrow = PROMachine(3, seed=0), PROMachine(1, seed=0)
        try:
            assert _skip_fallback("inline", wide)
            assert not _skip_fallback("inline", narrow)
        finally:
            wide.close()
            narrow.close()


class TestRecoveryLoop:
    def test_injected_crash_recovers_bit_identical(self):
        faulty = FaultInjectingBackend("thread", [CrashRank(rank=1, at_op=1, at_run=0)])
        machine = PROMachine(4, seed=11, backend=faulty, retry=2,
                             timeout=scale_timeout(10))
        clean = PROMachine(4, seed=11, backend="thread")
        try:
            recovered = machine.run(_draw_and_exchange)
            reference = clean.run(_draw_and_exchange)
            assert recovered.results == reference.results
            assert faulty.runs_started == 2  # one failed attempt, one replay
            assert recovered.cost_report.retries == 1
            assert recovered.cost_report.recovery_seconds > 0.0
            assert recovered.cost_report.degraded_to is None
        finally:
            machine.close()
            clean.close()

    def test_fatal_program_errors_are_not_retried(self):
        calls = []
        machine = PROMachine(3, seed=0, backend="thread", retry=4)
        try:
            with pytest.raises(BackendError, match="rank"):
                machine.run(_fatal_program, calls)
        finally:
            machine.close()
        # One attempt only: a deterministic bug would fail identically again.
        assert calls.count(0) == 1

    def test_budget_exhaustion_raises_the_last_failure(self):
        faulty = FaultInjectingBackend("thread", [CrashRank(rank=0, at_op=0)])
        machine = PROMachine(4, seed=3, backend=faulty, retry=2,
                             timeout=scale_timeout(10))
        try:
            with pytest.raises(TransientBackendError, match="rank 0"):
                machine.run(_draw_and_exchange)
        finally:
            machine.close()
        assert faulty.runs_started == 2  # every configured attempt was spent

    def test_fallback_chain_degrades_with_identical_results(self):
        # The fault fires on *every* run: the thread backend can never
        # succeed, so the run must degrade to sim -- same streams, same
        # output -- and record where it landed.
        faulty = FaultInjectingBackend("thread", [CrashRank(rank=2, at_op=0)])
        policy = RetryPolicy(max_attempts=2, fallback=("thread", "sim"))
        machine = PROMachine(4, seed=29, backend=faulty, retry=policy,
                             timeout=scale_timeout(10))
        clean = PROMachine(4, seed=29, backend="sim")
        try:
            degraded = machine.run(_draw_and_exchange)
            reference = clean.run(_draw_and_exchange)
            assert degraded.results == reference.results
            assert degraded.cost_report.degraded_to == "sim"
            assert degraded.cost_report.retries == 2  # both thread attempts failed
        finally:
            machine.close()
            clean.close()

    def test_deadline_surfaces_as_typed_error_and_is_not_retried(self):
        policy = RetryPolicy(max_attempts=3, deadline=0.3, fallback=("sim",))
        machine = PROMachine(2, seed=0, backend="thread", retry=policy,
                             timeout=scale_timeout(10))
        started = time.monotonic()
        try:
            with pytest.raises(DeadlineError, match="deadline"):
                machine.run(_sleep_past_deadline)
        finally:
            machine.close()
        # Bounded: no second attempt, no sim fallback, no 10s fabric timeout.
        assert time.monotonic() - started < scale_timeout(1.5) + scale_timeout(1.0)

    def test_driver_threads_retry_through(self):
        out = random_permutation(
            np.arange(512), n_procs=4, backend="thread", seed=7, retry=2)
        clean = random_permutation(
            np.arange(512), n_procs=4, backend="thread", seed=7)
        assert np.array_equal(out, clean)
