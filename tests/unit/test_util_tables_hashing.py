"""Unit tests for repro.util.tables and repro.util.hashing."""

import itertools
from math import factorial

import numpy as np
import pytest

from repro.util.errors import ValidationError
from repro.util.hashing import (
    is_permutation,
    lehmer_rank,
    lehmer_unrank,
    permutation_fingerprint,
)
from repro.util.tables import format_markdown_table, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].endswith("bb")

    def test_title_included(self):
        out = format_table(["x"], [[1]], title="My table")
        assert out.splitlines()[0] == "My table"

    def test_float_formatting(self):
        out = format_table(["x"], [[3.14159265]])
        assert "3.142" in out

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatMarkdownTable:
    def test_structure(self):
        out = format_markdown_table(["a", "b"], [[1, 2]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1].startswith("|---")
        assert lines[2] == "| 1 | 2 |"

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])


class TestIsPermutation:
    def test_identity(self):
        assert is_permutation(np.arange(5))

    def test_shuffled(self):
        assert is_permutation([2, 0, 1, 4, 3])

    def test_empty(self):
        assert is_permutation(np.array([], dtype=np.int64))

    def test_duplicate_rejected(self):
        assert not is_permutation([0, 1, 1])

    def test_out_of_range_rejected(self):
        assert not is_permutation([0, 1, 3])

    def test_negative_rejected(self):
        assert not is_permutation([-1, 0, 1])

    def test_floats_rejected(self):
        assert not is_permutation(np.array([0.0, 1.0]))

    def test_2d_rejected(self):
        assert not is_permutation(np.zeros((2, 2), dtype=np.int64))


class TestLehmerRank:
    def test_identity_is_zero(self):
        assert lehmer_rank([0, 1, 2, 3]) == 0

    def test_reverse_is_max(self):
        assert lehmer_rank([3, 2, 1, 0]) == factorial(4) - 1

    def test_bijection_n4(self):
        ranks = {lehmer_rank(list(p)) for p in itertools.permutations(range(4))}
        assert ranks == set(range(factorial(4)))

    def test_unrank_roundtrip(self):
        for rank in range(factorial(5)):
            perm = lehmer_unrank(rank, 5)
            assert lehmer_rank(perm) == rank

    def test_rejects_non_permutation(self):
        with pytest.raises(ValidationError):
            lehmer_rank([0, 0, 1])

    def test_unrank_out_of_range(self):
        with pytest.raises(ValidationError):
            lehmer_unrank(factorial(4), 4)


class TestPermutationFingerprint:
    def test_deterministic(self):
        assert permutation_fingerprint([1, 2, 3]) == permutation_fingerprint([1, 2, 3])

    def test_order_sensitive(self):
        assert permutation_fingerprint([1, 2, 3]) != permutation_fingerprint([3, 2, 1])

    def test_different_lengths_differ(self):
        assert permutation_fingerprint([1]) != permutation_fingerprint([1, 1])

    def test_fits_in_64_bits(self):
        assert permutation_fingerprint(list(range(100))) < 2 ** 64
