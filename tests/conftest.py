"""Shared fixtures for the test suite.

Statistical tests use fixed seeds so the suite is deterministic; thresholds
are chosen so that a correct sampler fails with probability far below 1e-6
per test (the chi-square tests use alpha = 1e-4 on pre-seeded data, which
either passes always or fails always for a given code version).
"""

import numpy as np
import pytest

from repro.pro.machine import PROMachine


@pytest.fixture
def rng():
    """A fresh, deterministically seeded NumPy generator."""
    return np.random.default_rng(20030607)


@pytest.fixture
def machine2():
    """A 2-processor PRO machine with a fixed seed."""
    return PROMachine(2, seed=101)


@pytest.fixture
def machine3():
    """A 3-processor PRO machine with a fixed seed."""
    return PROMachine(3, seed=202)


@pytest.fixture
def machine4():
    """A 4-processor PRO machine with a fixed seed."""
    return PROMachine(4, seed=303)


@pytest.fixture
def machine5():
    """A 5-processor PRO machine (odd, non power of two) with a fixed seed."""
    return PROMachine(5, seed=404)
