"""Docs link checker: every internal reference must resolve.

Stdlib-only so it runs in CI next to ``mkdocs build --strict`` *and*
locally (``tests/unit/test_docs.py``) without the docs toolchain
installed.  Checks, over ``docs/*.md``, ``README.md`` and ``mkdocs.yml``:

* relative markdown links (``[text](page.md)`` / ``(page.md#anchor)``)
  point at files that exist, and anchors at headings that exist;
* absolute-path links into the repository (``benchmarks/...``,
  ``src/repro/...``) point at files that exist;
* every page listed in the ``mkdocs.yml`` nav exists, and every page in
  ``docs/`` is reachable from the nav (no orphans).

Exit code 0 = clean, 1 = at least one broken reference (all reported).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

_LINK = re.compile(r"\[[^\]^]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_NAV_PAGE = re.compile(r"^\s*-\s+(?:[^:]+:\s*)?(\S+\.md)\s*$", re.MULTILINE)


def _strip_code(text: str) -> str:
    """Drop fenced code blocks and inline code (links there are examples)."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def _anchor(heading: str) -> str:
    """mkdocs/GitHub-style slug of one heading."""
    slug = re.sub(r"[^\w\s-]", "", heading.strip().lower())
    return re.sub(r"[\s]+", "-", slug)


def _anchors_of(path: Path) -> set:
    return {_anchor(h) for h in _HEADING.findall(path.read_text())}


def _check_file(path: Path, errors: list) -> None:
    text = _strip_code(path.read_text())
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external: checked by humans/CI link services, not here
        target, _, anchor = target.partition("#")
        if not target:  # same-page anchor
            if anchor and _anchor(anchor) not in _anchors_of(path):
                errors.append(f"{path}: broken same-page anchor #{anchor}")
            continue
        base = path.parent if not target.startswith("/") else REPO
        resolved = (base / target.lstrip("/")).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link -> {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if _anchor(anchor) not in _anchors_of(resolved):
                errors.append(f"{path}: broken anchor -> {target}#{anchor}")


def _check_nav(errors: list) -> None:
    mkdocs_yml = REPO / "mkdocs.yml"
    if not mkdocs_yml.exists():
        errors.append("mkdocs.yml is missing")
        return
    nav_pages = set(_NAV_PAGE.findall(mkdocs_yml.read_text()))
    for page in nav_pages:
        if not (DOCS / page).exists():
            errors.append(f"mkdocs.yml: nav entry {page} does not exist")
    for page in DOCS.glob("*.md"):
        if page.name not in nav_pages:
            errors.append(f"docs/{page.name} is not reachable from the nav")


def check() -> list:
    """Run every check; return the list of error strings (empty = clean)."""
    errors: list = []
    for path in sorted(DOCS.glob("*.md")) + [REPO / "README.md"]:
        if path.exists():
            _check_file(path, errors)
    _check_nav(errors)
    return errors


def main() -> int:
    errors = check()
    for error in errors:
        print(f"BROKEN: {error}")
    pages = len(list(DOCS.glob('*.md')))
    print(f"checked {pages} docs pages + README: "
          f"{'clean' if not errors else f'{len(errors)} broken reference(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
